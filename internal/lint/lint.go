// Package lint is amrlint: a stdlib-only static analyzer that enforces the
// repo's determinism and resource-discipline invariants at build time.
//
// The experiment tables are this repo's product, and DESIGN.md promises they
// are bit-identical across machines and harness worker counts. PRs 2-4
// enforce that promise dynamically — paranoid-mode audits (internal/check)
// panic when a runtime invariant breaks. This package is the static half:
// the mistakes that make runs irreproducible (a stray time.Now in the
// deterministic core, ranging over a map into an ordered sink, a leaked MPI
// request, an unclosed trace span, a kind-switch that silently drops a new
// variant) are flagged on every build, before any campaign has to diverge to
// reveal them.
//
// The implementation is deliberately stdlib-only: go/parser, go/ast and
// go/types with the "source" importer — no golang.org/x/tools. Module
// packages are parsed and type-checked in dependency order by the loader in
// load.go; only standard-library imports are delegated to the source
// importer.
//
// Diagnostics can be waived at the site with
//
//	//lint:ignore <rule> <reason>
//
// either trailing the offending line or on the line directly above it. A
// waiver that suppresses nothing is itself a diagnostic (rule "waiver"), so
// stale waivers cannot accumulate. See DESIGN.md §8 for the rule table and
// the runtime counterpart of each rule.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding: the position, the stable rule id, the
// human message, a suggested fix, and — for the interprocedural rules — the
// call-path witness that makes the finding checkable by a reviewer. It is
// the unit of amrlint's output in both text and -json modes.
type Diagnostic struct {
	// File is the path of the offending file as given to the loader.
	File string `json:"file"`
	// Line and Col are the 1-based position of the finding.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Rule is the stable rule id ("determinism", "maporder", "reqleak",
	// "spanpair", "exhaustive", "sharedmut", "errdrop", "hotalloc",
	// "planecross", "waiver").
	Rule string `json:"rule"`
	// Message describes the violation.
	Message string `json:"message"`
	// Fix is the suggested remediation, when the analyzer has one.
	Fix string `json:"fix,omitempty"`
	// Path is the call-path witness of an interprocedural finding: function
	// display names from the analysis root (a window-phase closure, a
	// hot-path annotation, a core entry point) to the function containing
	// the flagged site. Empty for the purely local rules.
	Path []string `json:"path,omitempty"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
	if len(d.Path) > 0 {
		s += " [via " + strings.Join(d.Path, " -> ") + "]"
	}
	if d.Fix != "" {
		s += " (fix: " + d.Fix + ")"
	}
	return s
}

// Package is one loaded, type-checked package of the module under analysis.
type Package struct {
	// Path is the import path ("amrtools/internal/sim").
	Path string
	// Fset positions every file of the load (shared across packages).
	Fset *token.FileSet
	// Files are the parsed non-test files, in deterministic (name) order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's per-node facts for the files.
	Info *types.Info
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Pkg *Package
	// Module holds every loaded module package, for whole-module questions
	// (e.g. enumerating the implementers of a sealed interface).
	Module []*Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos under the given rule.
func (p *Pass) Reportf(pos token.Pos, rule, fix, format string, args ...interface{}) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
		Fix:     fix,
	})
}

// TypeOf is a nil-tolerant shorthand for the type of an expression.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object (nil when unresolved).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.Defs[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Uses[id]
}

// An Analyzer checks one rule over one package at a time.
type Analyzer interface {
	// Name is the stable rule id used in diagnostics and waivers.
	Name() string
	// Doc is a one-line description for amrlint's usage text.
	Doc() string
	// Run analyzes pass.Pkg, reporting findings through pass.Reportf.
	Run(pass *Pass)
}

// A ModuleAnalyzer checks one rule over the whole module at once — the
// interface of the interprocedural rules, which need the module call graph
// and the per-function summaries rather than one package's AST. An analyzer
// implementing both interfaces is run once as a ModuleAnalyzer; its Run
// method is ignored.
type ModuleAnalyzer interface {
	Analyzer
	// RunModule analyzes the whole module through the shared call graph and
	// summaries, reporting through mp.Reportf.
	RunModule(mp *ModulePass)
}

// ModulePass is one interprocedural analyzer's view of the module: every
// loaded package, the call graph, and the per-function summaries. Graph and
// summaries are built once per Run and shared by all module analyzers.
type ModulePass struct {
	// Set holds every loaded package plus the pattern-selected subset.
	Set *ModuleSet
	// Graph is the module call graph (static calls, sealed-interface
	// dispatch, closure/function-value references).
	Graph *Graph
	// Sums holds the per-function summaries (receiver mutation, error
	// propagation, request-parameter handling).
	Sums *Summaries

	diags *[]Diagnostic
}

// Reportf records an interprocedural diagnostic at pos, with an optional
// call-path witness (root → containing function display names).
func (mp *ModulePass) Reportf(pos token.Pos, rule, fix string, path []string, format string, args ...interface{}) {
	position := mp.Set.Fset.Position(pos)
	*mp.diags = append(*mp.diags, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
		Fix:     fix,
		Path:    path,
	})
}

// Run executes every analyzer over the module, applies waivers, flags
// unused waivers, and returns the surviving diagnostics sorted by position.
// Per-package analyzers see the pattern-selected packages; module analyzers
// always see the whole module (an interprocedural fact does not stop at a
// pattern boundary) but their findings are filtered to selected packages.
func Run(set *ModuleSet, analyzers []Analyzer) []Diagnostic {
	var raw []Diagnostic
	var modRaw []Diagnostic
	var mp *ModulePass
	for _, a := range analyzers {
		ma, ok := a.(ModuleAnalyzer)
		if !ok {
			continue
		}
		if mp == nil {
			g := BuildGraph(set.All)
			mp = &ModulePass{Set: set, Graph: g, Sums: Summarize(g), diags: &modRaw}
		}
		ma.RunModule(mp)
	}
	for _, pkg := range set.Selected {
		pass := &Pass{Pkg: pkg, Module: set.All, diags: &raw}
		for _, a := range analyzers {
			if _, ok := a.(ModuleAnalyzer); ok {
				continue
			}
			a.Run(pass)
		}
	}
	raw = append(raw, set.restrict(modRaw)...)
	ws := collectWaivers(set.All)
	diags := ws.filter(raw)
	diags = append(diags, ws.unusedIn(set.selectedFiles())...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags
}
