package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// sinkMethods are call names whose invocation inside a map-range body means
// iteration order reaches an ordered sink: telemetry table/recorder appends,
// writer and printer families, and encoders. One row per iteration in a
// map-dependent order is exactly the bug that makes colfiles differ between
// two runs of the same binary.
var sinkMethods = map[string]bool{
	"Append": true, "Emit": true, "EmitRaw": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Encode": true,
}

// sortPackages are the packages whose calls count as establishing a
// deterministic order over a collected slice.
var sortPackages = map[string]bool{"sort": true, "slices": true}

// MapOrder flags `range` over a map whose body feeds an ordered sink.
// Go's map iteration order is deliberately randomized, so each such loop
// emits rows in a different order on every run — the canonical
// reproducibility bug in output paths.
//
// Two shapes are accepted without a waiver:
//   - bodies that only write back into maps (order-independent), and
//   - the collect-then-sort idiom: the body only appends to local slices,
//     and every such slice later flows into a sort/slices call in the same
//     function before anything else consumes it.
//
// Order-insensitive reductions (sums, maxima, percentile inputs) over
// appended slices need a waiver naming why order cannot matter.
//
// Runtime counterpart: the bit-identical table assertions of the j1-vs-jN
// and differential campaigns, which catch the divergence after the fact.
type MapOrder struct{}

func (MapOrder) Name() string { return "maporder" }
func (MapOrder) Doc() string {
	return "flag map iteration feeding ordered sinks (tables, writers, appends) without sorting"
}

func (MapOrder) Run(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMapRanges(pass, fn.Body)
		}
	}
}

func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}

		var appended []types.Object // local slices the body appends to
		sinkName := ""
		var sinkPos ast.Node
		walkStack(rng.Body, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || sinkName != "" {
				return
			}
			if isAppend(pass, call) {
				if tgt := appendTarget(pass, call, stack); tgt != nil {
					appended = append(appended, tgt)
					return
				}
				sinkName, sinkPos = "append", call
				return
			}
			if name := calleeName(call); sinkMethods[name] {
				sinkName, sinkPos = name, call
			}
		})

		switch {
		case sinkName != "":
			pass.Reportf(sinkPos.Pos(), "maporder",
				"collect the keys, sort them, and iterate the sorted slice",
				"map iteration reaches ordered sink %s: row order depends on Go's randomized map order", sinkName)
		case len(appended) > 0:
			for _, obj := range appended {
				if !sortedAfter(pass, body, rng, obj) {
					pass.Reportf(rng.Pos(), "maporder",
						"sort the collected slice before it is consumed, or waive with the reason order cannot matter",
						"map iteration appends to %q, which is never sorted in this function", obj.Name())
				}
			}
		}
		return true
	})
}

// calleeName extracts the bare function or method name of a call.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// sortedAfter reports whether obj appears as an argument (possibly nested)
// of a sort/slices call, or a call whose name contains "Sort", positioned
// after the range statement in the same function body.
func sortedAfter(pass *Pass, body *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, a := range call.Args {
			used := false
			ast.Inspect(a, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == obj {
					used = true
				}
				return !used
			})
			if used {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// isSortCall recognizes calls that establish a deterministic order: the
// sort and slices packages, plus local helpers following the sortXxx/SortXxx
// naming convention (sortFindings, SortBy).
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName); ok {
				return sortPackages[pn.Imported().Path()]
			}
		}
		return sortHelperName(fun.Sel.Name)
	case *ast.Ident:
		return sortHelperName(fun.Name)
	}
	return false
}

func sortHelperName(name string) bool {
	return strings.HasPrefix(name, "sort") || strings.HasPrefix(name, "Sort")
}
