package lint

import (
	"go/ast"
	"go/types"
)

// SpanPair flags trace span begins that can never be closed: the Open
// handle returned by a Begin call must have End/EndRaw called on it (a
// deferred call counts) or escape the function that opened it. An Open
// dropped on the floor is a span that silently never reaches the flight
// recorder — the diagnosis timeline then under-reports exactly the interval
// someone bothered to instrument.
//
// Runtime counterpart: none — a lost span is invisible at runtime, which is
// why the pairing is enforced statically.
type SpanPair struct{}

func (SpanPair) Name() string { return "spanpair" }
func (SpanPair) Doc() string {
	return "every trace span Begin must be closed by End/EndRaw in the same function"
}

func (SpanPair) Run(pass *Pass) {
	mustConsume(pass, "spanpair",
		"call End/EndRaw on the handle (defer works) or return it to the caller",
		isSpanBegin, "span Begin handle")
}

// isSpanBegin matches method calls named Begin returning a value (or
// pointer) of a type named Open — the shape of trace.(*Recorder).Begin.
func isSpanBegin(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Begin" {
		return false
	}
	t := pass.TypeOf(call)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Open"
}
