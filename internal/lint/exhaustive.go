package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive enforces closed-sum-type switches: a switch over a module-
// declared enum type (a defined basic type with a block of typed constants —
// evBody kinds, trace span kinds, wait kinds) and a type switch over a
// module-declared sealed interface (one with an unexported method) must
// either cover every variant or carry a default clause that panics. A
// silent default is how a newly added variant slips through every layer
// until a table diverges.
//
// Sentinel terminator constants (names beginning num/max/count, and blank
// constants) do not count as variants.
//
// Runtime counterpart: paranoid-mode audits panic on impossible states after
// the fact; this rule refuses the hole at compile time.
type Exhaustive struct{}

func (Exhaustive) Name() string { return "exhaustive" }
func (Exhaustive) Doc() string {
	return "switches over module enum types and sealed interfaces must cover every variant or panic in default"
}

func (Exhaustive) Run(pass *Pass) {
	modulePkgs := map[*types.Package]*Package{}
	for _, p := range pass.Module {
		modulePkgs[p.Types] = p
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch sw := n.(type) {
			case *ast.SwitchStmt:
				checkEnumSwitch(pass, modulePkgs, sw)
			case *ast.TypeSwitchStmt:
				checkTypeSwitch(pass, modulePkgs, sw)
			}
			return true
		})
	}
}

// sentinelConst reports whether a constant is a terminator/sentinel rather
// than a variant (numKinds-style counters).
func sentinelConst(name string) bool {
	lower := strings.ToLower(name)
	return name == "_" ||
		strings.HasPrefix(lower, "num") ||
		strings.HasPrefix(lower, "max") ||
		strings.HasPrefix(lower, "count")
}

// enumVariants returns the package-level constants of exactly type named,
// excluding sentinels, when named is a module-declared basic-kinded type
// with at least two such constants.
func enumVariants(modulePkgs map[*types.Package]*Package, named *types.Named) []*types.Const {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	if _, inModule := modulePkgs[obj.Pkg()]; !inModule {
		return nil
	}
	if _, basic := named.Underlying().(*types.Basic); !basic {
		return nil
	}
	scope := obj.Pkg().Scope()
	var consts []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || sentinelConst(name) || !types.Identical(c.Type(), named) {
			continue
		}
		consts = append(consts, c)
	}
	if len(consts) < 2 {
		return nil
	}
	sort.Slice(consts, func(i, j int) bool {
		return constant.Compare(consts[i].Val(), token.LSS, consts[j].Val())
	})
	return consts
}

func checkEnumSwitch(pass *Pass, modulePkgs map[*types.Package]*Package, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	named, ok := pass.TypeOf(sw.Tag).(*types.Named)
	if !ok {
		return
	}
	variants := enumVariants(modulePkgs, named)
	if variants == nil {
		return
	}

	covered := map[string]bool{}
	hasDefault, defaultPanics := false, false
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
			defaultPanics = bodyPanics(cc.Body)
			continue
		}
		for _, e := range cc.List {
			if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}

	var missing []string
	for _, c := range variants {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	reportSwitch(pass, sw.Pos(), named.Obj().Name(), missing, hasDefault, defaultPanics)
}

// checkTypeSwitch enforces coverage for type switches over sealed module
// interfaces: every module-declared named type implementing the interface
// must appear as a case.
func checkTypeSwitch(pass *Pass, modulePkgs map[*types.Package]*Package, sw *ast.TypeSwitchStmt) {
	iface, name := switchedInterface(pass, sw)
	if iface == nil || !sealedModuleInterface(modulePkgs, iface) {
		return
	}
	impls := implementers(modulePkgs, iface)
	if len(impls) < 2 {
		return
	}

	covered := map[string]bool{}
	hasDefault, defaultPanics := false, false
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
			defaultPanics = bodyPanics(cc.Body)
			continue
		}
		for _, e := range cc.List {
			t := pass.TypeOf(e)
			if t == nil {
				continue
			}
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if n, ok := t.(*types.Named); ok {
				covered[typeKey(n)] = true
			}
		}
	}

	var missing []string
	for _, impl := range impls {
		if !covered[typeKey(impl)] {
			missing = append(missing, impl.Obj().Name())
		}
	}
	reportSwitch(pass, sw.Pos(), name, missing, hasDefault, defaultPanics)
}

// reportSwitch emits the shared diagnostic for both switch forms.
func reportSwitch(pass *Pass, pos token.Pos, typeName string, missing []string, hasDefault, defaultPanics bool) {
	if len(missing) == 0 {
		return
	}
	if hasDefault && defaultPanics {
		return
	}
	if !hasDefault {
		pass.Reportf(pos, "exhaustive",
			"add the missing cases or a default clause that panics",
			"switch over %s misses variants %s and has no default",
			typeName, strings.Join(missing, ", "))
		return
	}
	pass.Reportf(pos, "exhaustive",
		"make the default panic (check.Failf) so a new variant cannot be silently absorbed",
		"switch over %s misses variants %s behind a non-panicking default",
		typeName, strings.Join(missing, ", "))
}

// switchedInterface resolves the interface type being switched over and a
// printable name for it.
func switchedInterface(pass *Pass, sw *ast.TypeSwitchStmt) (*types.Named, string) {
	var x ast.Expr
	switch a := sw.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
				x = ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	}
	if x == nil {
		return nil, ""
	}
	named, ok := pass.TypeOf(x).(*types.Named)
	if !ok {
		return nil, ""
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return nil, ""
	}
	return named, named.Obj().Name()
}

// sealedModuleInterface reports whether iface is declared in a module
// package and has at least one unexported method (so no type outside the
// module can implement it: its implementer set is closed and enumerable).
func sealedModuleInterface(modulePkgs map[*types.Package]*Package, named *types.Named) bool {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if _, inModule := modulePkgs[obj.Pkg()]; !inModule {
		return false
	}
	iface := named.Underlying().(*types.Interface)
	for i := 0; i < iface.NumMethods(); i++ {
		if !iface.Method(i).Exported() {
			return true
		}
	}
	return false
}

// implementers enumerates the module-declared named non-interface types
// implementing iface (by value or pointer receiver).
func implementers(modulePkgs map[*types.Package]*Package, named *types.Named) []*types.Named {
	iface := named.Underlying().(*types.Interface)
	var out []*types.Named
	for tpkg := range modulePkgs {
		scope := tpkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			n, ok := tn.Type().(*types.Named)
			if !ok || n == named {
				continue
			}
			if _, isIface := n.Underlying().(*types.Interface); isIface {
				continue
			}
			if types.Implements(n, iface) || types.Implements(types.NewPointer(n), iface) {
				out = append(out, n)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return typeKey(out[i]) < typeKey(out[j]) })
	return out
}

func typeKey(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// bodyPanics reports whether stmts contain a call to panic or to a function
// named Failf (internal/check's violation panic).
func bodyPanics(stmts []ast.Stmt) bool {
	panics := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				name := calleeName(call)
				if name == "panic" || name == "Failf" {
					panics = true
				}
			}
			return !panics
		})
	}
	return panics
}
