package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide call graph the interprocedural rules
// traverse (DESIGN.md §8). Nodes are the module's declared functions and
// methods plus every function literal (closures are where the window-phase
// and worker-pool code lives, so they must be first-class). Edges come in
// three kinds, so each rule can pick the reachability semantics its
// invariant needs:
//
//	EdgeCall  — a direct static call: f(x), recv.Method(x), or an
//	            immediately-invoked literal func(){…}().
//	EdgeIface — an interface-method call, resolved to every module type
//	            implementing the interface. The module's interfaces are
//	            sealed in practice (physics.Problem, sim.MsgSink, …), so
//	            enumerating module implementers is the whole dispatch set.
//	EdgeRef   — a function value referenced without being called: a closure
//	            being created, a named function passed as an argument or
//	            stored in a field. Whoever holds the value may call it, so
//	            rules about code *executed in a context* (window phase,
//	            worker goroutines) follow these edges; rules about direct
//	            control flow (hot-path allocation) do not.
//
// Calls through arbitrary function-typed variables produce no edge — the
// reference edge at the value's creation site already over-approximates
// where it can run, which is the conservative direction for every rule
// built on this graph.

// EdgeKind classifies one call-graph edge; kinds combine as a bit set when
// selecting traversal semantics.
type EdgeKind uint8

const (
	// EdgeCall is a direct static call.
	EdgeCall EdgeKind = 1 << iota
	// EdgeIface is an interface dispatch, resolved to a module implementer.
	EdgeIface
	// EdgeRef is a function value reference (closure creation, func passed
	// or stored without being called at this site).
	EdgeRef
)

// Edge is one outgoing call-graph edge.
type Edge struct {
	Kind EdgeKind
	To   *FuncNode
	// Pos is the call or reference site.
	Pos token.Pos
}

// FuncNode is one function in the call graph: a declared function/method
// (Decl non-nil) or a function literal (Lit non-nil, Parent the enclosing
// node).
type FuncNode struct {
	// Name is the display name used in call-path witnesses:
	// "driver.(*Driver).step" for methods, "mpi.(*World).Spawn$1" for the
	// first literal inside Spawn.
	Name string
	// Pkg is the package holding the function.
	Pkg *Package
	// Obj is the declared function object (nil for literals).
	Obj *types.Func
	// Decl / Lit: exactly one is non-nil.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Parent is the enclosing function of a literal (nil for declarations).
	Parent *FuncNode
	// Out are the outgoing edges, in source order.
	Out []Edge
	// Hot and Cold mirror the //amr:hotpath and //amr:cold directives on a
	// declaration (always false for literals).
	Hot  bool
	Cold bool

	index int // position in Graph.Nodes, for deterministic traversal
}

// Body returns the function body (nil for bodyless declarations).
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Pos returns the function's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// Graph is the module call graph.
type Graph struct {
	// Nodes lists every function in deterministic (package, position)
	// order.
	Nodes []*FuncNode

	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
	// modulePkgs maps the type-checker packages of the module, so callee
	// resolution can tell module functions from stdlib ones.
	modulePkgs map[*types.Package]*Package
	// impls caches sealed-interface dispatch resolution per interface
	// method object.
	impls map[*types.Func][]*FuncNode

	// windowRoots/workerRoots memoize the context-root scans, which cost a
	// full module AST walk each and are needed by several rules.
	windowRoots, workerRoots         []*FuncNode
	windowRootsOnce, workerRootsOnce bool
}

// NodeOf returns the node of a declared function object (nil when obj is
// not a module function). Generic instantiations resolve to their origin.
func (g *Graph) NodeOf(obj *types.Func) *FuncNode {
	if obj == nil {
		return nil
	}
	return g.byObj[obj.Origin()]
}

// LitNode returns the node of a function literal.
func (g *Graph) LitNode(lit *ast.FuncLit) *FuncNode { return g.byLit[lit] }

// BuildGraph constructs the call graph over every loaded package.
func BuildGraph(pkgs []*Package) *Graph {
	g := &Graph{
		byObj:      map[*types.Func]*FuncNode{},
		byLit:      map[*ast.FuncLit]*FuncNode{},
		modulePkgs: map[*types.Package]*Package{},
		impls:      map[*types.Func][]*FuncNode{},
	}
	for _, pkg := range pkgs {
		g.modulePkgs[pkg.Types] = pkg
	}
	// Pass 1: create nodes for declarations and their nested literals.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				node := &FuncNode{
					Name: declName(pkg, fd),
					Pkg:  pkg, Obj: obj, Decl: fd,
					Hot:  hasDirective(fd.Doc, "hotpath"),
					Cold: hasDirective(fd.Doc, "cold"),
				}
				g.addNode(node)
				if obj != nil {
					g.byObj[obj] = node
				}
				if fd.Body != nil {
					g.addLiterals(node, fd.Body)
				}
			}
		}
	}
	// Pass 2: edges.
	for _, n := range g.Nodes {
		if n.Lit == nil && n.Body() != nil {
			g.addEdges(n)
		}
	}
	for _, n := range g.Nodes {
		if n.Lit != nil {
			g.addEdges(n)
		}
	}
	return g
}

func (g *Graph) addNode(n *FuncNode) {
	n.index = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
}

// addLiterals creates nodes for every function literal nested in body,
// attributing each to its innermost enclosing function node.
func (g *Graph) addLiterals(parent *FuncNode, body *ast.BlockStmt) {
	ord := 0
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(c ast.Node) bool {
			lit, ok := c.(*ast.FuncLit)
			if !ok {
				return true
			}
			ord++
			node := &FuncNode{
				Name: fmt.Sprintf("%s$%d", parent.Name, ord),
				Pkg:  parent.Pkg, Lit: lit, Parent: parent,
			}
			g.addNode(node)
			g.byLit[lit] = node
			g.addLiterals(node, lit.Body)
			return false // nested literals belong to node, not parent
		})
	}
	walk(body)
}

// addEdges walks n's own body (not nested literals') resolving calls and
// references.
func (g *Graph) addEdges(n *FuncNode) {
	body := n.Body()
	walkOwn(body, func(node ast.Node) {
		if call, ok := node.(*ast.CallExpr); ok {
			g.callEdge(n, call)
		}
	})
	// References: every *types.Func use or literal that is not a call's Fun.
	g.refWalk(n, body)
}

// walkOwn walks body, skipping nested function literals (their statements
// belong to their own node).
func walkOwn(body *ast.BlockStmt, fn func(ast.Node)) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// callEdge resolves one call expression into call/iface edges.
func (g *Graph) callEdge(from *FuncNode, call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		if to := g.byLit[fun]; to != nil {
			from.Out = append(from.Out, Edge{Kind: EdgeCall, To: to, Pos: call.Pos()})
		}
	case *ast.Ident:
		if obj, ok := from.Pkg.Info.Uses[fun].(*types.Func); ok {
			if to := g.NodeOf(obj); to != nil {
				from.Out = append(from.Out, Edge{Kind: EdgeCall, To: to, Pos: call.Pos()})
			}
		}
	case *ast.SelectorExpr:
		sel, isMethod := from.Pkg.Info.Selections[fun]
		if !isMethod {
			// Package-qualified function: pkg.Fun.
			if obj, ok := from.Pkg.Info.Uses[fun.Sel].(*types.Func); ok {
				if to := g.NodeOf(obj); to != nil {
					from.Out = append(from.Out, Edge{Kind: EdgeCall, To: to, Pos: call.Pos()})
				}
			}
			return
		}
		obj, ok := sel.Obj().(*types.Func)
		if !ok {
			return
		}
		if types.IsInterface(sel.Recv()) {
			for _, impl := range g.implementers(obj, sel.Recv()) {
				from.Out = append(from.Out, Edge{Kind: EdgeIface, To: impl, Pos: call.Pos()})
			}
			return
		}
		if to := g.NodeOf(obj); to != nil {
			from.Out = append(from.Out, Edge{Kind: EdgeCall, To: to, Pos: call.Pos()})
		}
	}
}

// implementers resolves an interface method to the concrete module methods
// that can stand behind it: for every named module type whose method set
// (value or pointer) satisfies the interface, the correspondingly-named
// method.
func (g *Graph) implementers(m *types.Func, recv types.Type) []*FuncNode {
	if cached, ok := g.impls[m]; ok {
		return cached
	}
	iface, _ := recv.Underlying().(*types.Interface)
	var out []*FuncNode
	if iface != nil {
		for _, node := range g.Nodes {
			if node.Obj == nil || node.Obj.Name() != m.Name() {
				continue
			}
			sig := node.Obj.Type().(*types.Signature)
			rv := sig.Recv()
			if rv == nil {
				continue
			}
			rt := rv.Type()
			if types.Implements(rt, iface) {
				out = append(out, node)
				continue
			}
			// A value-receiver set may only satisfy the interface through
			// the pointer type.
			if _, isPtr := rt.(*types.Pointer); !isPtr && types.Implements(types.NewPointer(rt), iface) {
				out = append(out, node)
			}
		}
	}
	g.impls[m] = out
	return out
}

// refWalk adds reference edges for every function value referenced (not
// called) in from's own body: identifiers and method/package selectors
// resolving to module functions outside callee position, and function
// literals outside callee position.
func (g *Graph) refWalk(from *FuncNode, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	// Callee positions: the call's Fun, and — for selector callees — the
	// Sel ident too, so x.M() does not also read as a reference to M.
	callee := map[ast.Node]bool{}
	walkOwn(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			fun := ast.Unparen(call.Fun)
			callee[fun] = true
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				callee[ast.Node(sel.Sel)] = true
			}
		}
	})
	report := func(pos token.Pos, to *FuncNode) {
		from.Out = append(from.Out, Edge{Kind: EdgeRef, To: to, Pos: pos})
	}
	walkOwn(body, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || callee[ast.Node(id)] {
			return
		}
		if obj, ok := from.Pkg.Info.Uses[id].(*types.Func); ok {
			if to := g.NodeOf(obj); to != nil {
				report(id.Pos(), to)
			}
		}
	})
	// Literals referenced without being immediately called. walkOwn skips
	// literal subtrees, so inspect directly and cut at each literal.
	for _, stmt := range body.List {
		ast.Inspect(stmt, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			if !callee[ast.Node(lit)] {
				if to := g.byLit[lit]; to != nil {
					report(lit.Pos(), to)
				}
			}
			return false // nested literals are the inner node's references
		})
	}
}

// declName builds the display name of a declaration: "pkg.Fun" or
// "pkg.(*Recv).Method".
func declName(pkg *Package, fd *ast.FuncDecl) string {
	base := pkg.Types.Name()
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return base + "." + fd.Name.Name
	}
	recv := types.ExprString(fd.Recv.List[0].Type)
	if strings.HasPrefix(recv, "*") {
		return base + ".(" + recv + ")." + fd.Name.Name
	}
	return base + "." + recv + "." + fd.Name.Name
}

// hasDirective reports whether a doc comment carries //amr:<name>.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == "//amr:"+name {
			return true
		}
	}
	return false
}

// Reach is one BFS over the graph: the reached set plus parent pointers for
// call-path witnesses.
type Reach struct {
	g    *Graph
	from map[*FuncNode]Edge // reached node -> edge that reached it (zero Edge for roots)
	in   map[*FuncNode]bool
}

// Reachable runs a BFS from roots along edges whose kind is in kinds,
// refusing to expand nodes for which stop returns true (the node itself is
// still marked reached). stop may be nil.
func (g *Graph) Reachable(roots []*FuncNode, kinds EdgeKind, stop func(*FuncNode) bool) *Reach {
	r := &Reach{g: g, from: map[*FuncNode]Edge{}, in: map[*FuncNode]bool{}}
	// Deterministic worklist order: sort roots by node index.
	queue := append([]*FuncNode(nil), roots...)
	sort.Slice(queue, func(i, j int) bool { return queue[i].index < queue[j].index })
	for _, n := range queue {
		r.in[n] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if stop != nil && stop(n) {
			continue
		}
		for _, e := range n.Out {
			if e.Kind&kinds == 0 || r.in[e.To] {
				continue
			}
			r.in[e.To] = true
			r.from[e.To] = Edge{Kind: e.Kind, To: n, Pos: e.Pos} // To doubles as "via"
			queue = append(queue, e.To)
		}
	}
	return r
}

// Has reports whether n was reached.
func (r *Reach) Has(n *FuncNode) bool { return r.in[n] }

// Path returns the call-path witness from a root to n: display names, root
// first, n last. For a root it is just {n.Name}.
func (r *Reach) Path(n *FuncNode) []string {
	var rev []string
	for cur := n; cur != nil; {
		rev = append(rev, cur.Name)
		e, ok := r.from[cur]
		if !ok {
			break
		}
		cur = e.To
	}
	out := make([]string, len(rev))
	for i, s := range rev {
		out[len(rev)-1-i] = s
	}
	return out
}

// EnclosingNode maps a position inside some function body to its innermost
// function node — the bridge from a syntactic finding to the graph.
func (g *Graph) EnclosingNode(pkg *Package, pos token.Pos) *FuncNode {
	var best *FuncNode
	for _, n := range g.Nodes {
		if n.Pkg != pkg || n.Body() == nil {
			continue
		}
		if pos < n.Body().Pos() || pos > n.Body().End() {
			continue
		}
		if best == nil || (n.Body().Pos() >= best.Body().Pos() && n.Body().End() <= best.Body().End()) {
			best = n
		}
	}
	return best
}
