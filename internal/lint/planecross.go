package lint

import (
	"go/ast"
	"go/types"
)

// PlaneCross machine-checks the two-plane lane discipline of DESIGN.md §11:
// sim-plane instruments (the laned Counter/Sum/Histogram — unsynchronized,
// safe only under shard ownership) may only be updated from window-phase
// contexts, and host-plane instruments (the atomic HostCounter/HostGauge/
// HostHistogram) may only be updated from host contexts (goroutines outside
// the deterministic core, HTTP handlers).
//
// An update is a call to a mutating instrument method (Inc/Add/Observe on
// the laned types, Inc/Add/Set/SetMax/Observe on the host types) on a type
// declared in a package named "metrics". Reads (Value, Snapshot, Write) are
// free: the host plane snapshots sim instruments between windows by design.
//
// Host reachability stops at window-phase-reachable functions, so shared
// plumbing that both planes call through is attributed to the sim plane and
// not double-flagged.
//
// Runtime counterpart: a laned instrument updated from a wall-clock
// goroutine is a data race the widened `go test -race ./...` job can only
// catch when the schedule cooperates; a host atomic updated per simulated
// event is a determinism and contention bug no audit currently catches.
type PlaneCross struct {
	// Core is the deterministic-core package list used to classify
	// goroutine spawns as host-plane roots (DefaultCorePackages when nil).
	Core []string
}

// NewPlaneCross returns the planecross analyzer over the given core set.
func NewPlaneCross(core []string) *PlaneCross {
	if core == nil {
		core = DefaultCorePackages
	}
	return &PlaneCross{Core: core}
}

func (*PlaneCross) Name() string { return "planecross" }
func (*PlaneCross) Doc() string {
	return "sim-plane metrics only from window contexts, host-plane metrics only from host contexts"
}

// Run is unused: PlaneCross is a ModuleAnalyzer.
func (*PlaneCross) Run(*Pass) {}

// simUpdateMethods / hostUpdateMethods are the mutating methods of each
// plane's instrument types.
var (
	simInstrumentTypes = map[string]bool{"Counter": true, "Sum": true, "Histogram": true}
	simUpdateMethods   = map[string]bool{"Inc": true, "Add": true, "Observe": true}

	hostInstrumentTypes = map[string]bool{"HostCounter": true, "HostGauge": true, "HostHistogram": true}
	hostUpdateMethods   = map[string]bool{"Inc": true, "Add": true, "Set": true, "SetMax": true, "Observe": true}
)

func (pc *PlaneCross) RunModule(mp *ModulePass) {
	g := mp.Graph
	simReach := g.Reachable(WindowRoots(g), EdgeCall|EdgeIface|EdgeRef, nil)
	hostReach := g.Reachable(HostRoots(g, pc.Core), EdgeCall|EdgeIface|EdgeRef,
		func(n *FuncNode) bool { return simReach.Has(n) })
	for _, n := range g.Nodes {
		if simReach.Has(n) {
			pc.checkNode(mp, n, simReach, true)
		} else if hostReach.Has(n) {
			pc.checkNode(mp, n, hostReach, false)
		}
	}
}

// checkNode scans one function's own body for instrument updates belonging
// to the other plane.
func (pc *PlaneCross) checkNode(mp *ModulePass, n *FuncNode, reach *Reach, simContext bool) {
	walkOwn(n.Body(), func(node ast.Node) {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		sel, ok := n.Pkg.Info.Selections[fun]
		if !ok {
			return
		}
		typeName, method, ok := instrumentCall(sel, fun.Sel.Name)
		if !ok {
			return
		}
		switch {
		case simContext && hostInstrumentTypes[typeName] && hostUpdateMethods[method]:
			mp.Reportf(call.Pos(), "planecross",
				"record through the window's laned sim instruments and let the host plane snapshot them",
				reach.Path(n),
				"host-plane instrument %s.%s updated from a window-phase context", typeName, method)
		case !simContext && simInstrumentTypes[typeName] && simUpdateMethods[method]:
			mp.Reportf(call.Pos(), "planecross",
				"use a host-plane (atomic) instrument; laned instruments are unsynchronized and owned by the window phase",
				reach.Path(n),
				"sim-plane instrument %s.%s updated from a host-plane context", typeName, method)
		}
	})
}

// instrumentCall identifies a method call on an instrument type declared in
// a package named "metrics", returning the type and method names.
func instrumentCall(sel *types.Selection, method string) (string, string, bool) {
	recv := sel.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "metrics" {
		return "", "", false
	}
	return named.Obj().Name(), method, true
}
