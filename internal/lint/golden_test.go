package lint

import "testing"

// TestRealModuleClean is the golden assertion behind `make lint` and the CI
// lint job: the repository itself carries zero unwaived diagnostics. Any
// reintroduced wall-clock call in the deterministic core, unsorted map
// emission, leaked request, dropped span, non-exhaustive kind switch, or
// stale waiver fails this test (and `amrlint ./...`) immediately.
func TestRealModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	set, err := LoadSet(LoadConfig{Dir: "../.."})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(set, Analyzers())
	for _, d := range diags {
		t.Errorf("unwaived diagnostic: %s", d.String())
	}
}
