package lint

import (
	"go/ast"
	"go/types"
)

// SharedMut flags mutable state shared across shard-window or harness-worker
// execution contexts without lane discipline — the static form of the PR 7
// shared-RNG bug, where a physics problem's `rng *xrand.RNG` field was
// advanced from every rank's cost query, making results depend on the order
// shards happened to run.
//
// Three shapes are reported, each with a call-path witness from the
// context root:
//
//  1. A package-level variable written by code reachable from a
//     window-phase closure or a harness worker body, unless the write is
//     laned (indexed by a per-context expression).
//  2. A read-modify call — a method that mutates scalar receiver state AND
//     returns a value (an RNG draw, an unlaned sequence counter) — on a
//     receiver that outlives the call (the enclosing method's receiver, a
//     captured variable, a global). Types annotated //amr:shardowned are
//     exempt: their mutation safety is the shard-ownership protocol the
//     runtime audits in paranoid mode.
//  3. A window-phase or worker root closure writing an unlaned captured
//     variable from the spawning scope.
//
// Runtime counterpart: the j1-vs-jN table-identity tests and paranoid-mode
// shard-ownership audits, which only catch the divergence on runs where the
// orders actually differ; this rule names the shared state on every build.
type SharedMut struct{}

func (SharedMut) Name() string { return "sharedmut" }
func (SharedMut) Doc() string {
	return "no unlaned shared mutable state reachable from shard windows or harness workers"
}

// Run is unused: SharedMut is a ModuleAnalyzer.
func (SharedMut) Run(*Pass) {}

func (sm SharedMut) RunModule(mp *ModulePass) {
	g := mp.Graph
	roots := append(WindowRoots(g), WorkerRoots(g)...)
	if len(roots) == 0 {
		return
	}
	reach := g.Reachable(roots, EdgeCall|EdgeIface|EdgeRef, nil)
	rootSet := map[*FuncNode]bool{}
	for _, r := range roots {
		rootSet[r] = true
	}
	for _, n := range g.Nodes {
		if !reach.Has(n) {
			continue
		}
		sm.checkGlobalWrites(mp, n, reach)
		sm.checkReadModify(mp, n, reach)
		if rootSet[n] && n.Lit != nil {
			sm.checkCapturedWrites(mp, n, reach)
		}
	}
}

// notPkgLevel is the lane predicate for context-local indexing: an index
// that mentions any non-global variable (a parameter, a loop variable of
// the spawning scope, a shard id) is taken as lane discipline.
func notPkgLevel(v *types.Var) bool { return !isPkgLevel(v) }

// isPkgLevel reports whether v is a package-level variable.
func isPkgLevel(v *types.Var) bool {
	if v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// checkGlobalWrites flags unlaned writes to package-level variables.
func (sm SharedMut) checkGlobalWrites(mp *ModulePass, n *FuncNode, reach *Reach) {
	report := func(lhs ast.Expr) {
		base, laned, ok := writeTarget(n.Pkg, lhs, notPkgLevel)
		if !ok || laned || !isPkgLevel(base) {
			return
		}
		mp.Reportf(lhs.Pos(), "sharedmut",
			"move the state into the per-shard/per-worker context, or index it by lane",
			reach.Path(n),
			"package-level variable %q written in shard-window/worker context", base.Name())
	}
	walkOwn(n.Body(), func(node ast.Node) {
		switch e := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				report(lhs)
			}
		case *ast.IncDecStmt:
			report(e.X)
		}
	})
}

// checkReadModify flags calls to scalar-receiver-mutating, value-returning
// methods on receivers that outlive the call.
func (sm SharedMut) checkReadModify(mp *ModulePass, n *FuncNode, reach *Reach) {
	params := map[*types.Var]bool{}
	for _, p := range paramObjs(n) {
		params[p] = true
	}
	body := n.Body()
	walkOwn(body, func(node ast.Node) {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		callee := staticCallee(mp.Graph, n.Pkg, call)
		if callee == nil || mp.Sums.RecvMutOf(callee) != RecvScalar {
			return
		}
		if sig := nodeSignature(callee); sig == nil || sig.Results().Len() == 0 {
			return // mutation without a result: not the read-modify class
		}
		base, _, ok := writeTarget(n.Pkg, fun.X, nil)
		if !ok {
			return // dynamic receiver chain: creation site is responsible
		}
		if localTo(body, base) || params[base] {
			return // context-local state, or the caller's responsibility
		}
		if id, bare := ast.Unparen(fun.X).(*ast.Ident); bare && objVar(n.Pkg, id) == recvObj(n) {
			// Self-delegation (r.Uint64() inside (*RNG).Intn): the object
			// advancing its own state. Sharing is judged at the outer call
			// sites, where the receiver chain shows whose state it is.
			return
		}
		if sm.shardOwnedChain(mp, callee, base) {
			return
		}
		mp.Reportf(call.Pos(), "sharedmut",
			"give each shard/worker its own instance (xrand.Split per lane), or derive the value statelessly",
			reach.Path(n),
			"order-dependent state advance: %s mutates scalar state of shared %q and returns a value",
			callee.Name, base.Name())
	})
}

// shardOwnedChain reports whether the callee's receiver type or the chain's
// base variable type carries //amr:shardowned.
func (sm SharedMut) shardOwnedChain(mp *ModulePass, callee *FuncNode, base *types.Var) bool {
	if sig := nodeSignature(callee); sig != nil && sig.Recv() != nil {
		if tn := namedTypeName(sig.Recv().Type()); tn != nil && mp.Sums.ShardOwned(tn) {
			return true
		}
	}
	if tn := namedTypeName(base.Type()); tn != nil && mp.Sums.ShardOwned(tn) {
		return true
	}
	return false
}

// namedTypeName unwraps pointers to the declared type name (nil for
// unnamed types).
func namedTypeName(t types.Type) *types.TypeName {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// checkCapturedWrites flags a root closure writing an unlaned variable
// captured from the spawning scope.
func (sm SharedMut) checkCapturedWrites(mp *ModulePass, n *FuncNode, reach *Reach) {
	params := map[*types.Var]bool{}
	for _, p := range paramObjs(n) {
		params[p] = true
	}
	body := n.Body()
	report := func(lhs ast.Expr) {
		base, laned, ok := writeTarget(n.Pkg, lhs, notPkgLevel)
		if !ok || laned || isPkgLevel(base) {
			return // globals are checkGlobalWrites' finding
		}
		if localTo(body, base) || params[base] {
			return
		}
		mp.Reportf(lhs.Pos(), "sharedmut",
			"index the write by this context's lane, or collect results through the context's own state",
			reach.Path(n),
			"window/worker closure writes captured variable %q without lane discipline", base.Name())
	}
	walkOwn(body, func(node ast.Node) {
		switch e := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				report(lhs)
			}
		case *ast.IncDecStmt:
			report(e.X)
		}
	})
}
