package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags per-event allocation in functions reachable — by direct
// calls and sealed-interface dispatch only — from a hot-path root: a
// function annotated
//
//	//amr:hotpath
//
// The annotated roots are the code the profile says runs per simulated
// event (the DES dispatch loop, mpi Isend/Irecv/Wait, simnet delivery);
// an allocation there multiplies by the event count, which is exactly the
// GC pressure PR 7's pooling work removed. Traversal is pruned below
// functions annotated //amr:cold (error paths, one-time setup).
//
// Flagged shapes, each with a call-path witness from the root:
//
//   - a closure allocated (a func literal not immediately invoked);
//   - &T{…}, new(T), or make(…) — a fresh composite per call, where the
//     module's pattern is pooling (mpi request freelist, event pool) or
//     reuse of a scratch buffer;
//   - interface boxing: a concrete non-pointer value passed to an
//     interface-typed parameter, which heap-allocates the box.
//
// Allocations inside the argument of a panic(…) call are exempt: they only
// evaluate on the failure path, so panic(fmt.Sprintf(…)) guards cost
// nothing on the hot path proper. (Assertion helpers whose arguments are
// evaluated eagerly — check.Assertf — are NOT exempt at the call site;
// boxing there happens whether or not the assertion fires.)
//
// Runtime counterpart: the benchmark suite's allocs/op assertions — they
// catch a regression only on the paths a benchmark drives; this rule covers
// every path reachable from the annotations.
type HotAlloc struct{}

func (HotAlloc) Name() string { return "hotalloc" }
func (HotAlloc) Doc() string {
	return "no closure, composite, or boxing allocation reachable from //amr:hotpath roots"
}

// Run is unused: HotAlloc is a ModuleAnalyzer.
func (HotAlloc) Run(*Pass) {}

func (ha HotAlloc) RunModule(mp *ModulePass) {
	g := mp.Graph
	roots := HotRoots(g)
	if len(roots) == 0 {
		return
	}
	reach := g.Reachable(roots, EdgeCall|EdgeIface, func(n *FuncNode) bool { return n.Cold })
	for _, n := range g.Nodes {
		if !reach.Has(n) || n.Cold {
			continue
		}
		ha.checkNode(mp, n, reach)
	}
}

func (ha HotAlloc) checkNode(mp *ModulePass, n *FuncNode, reach *Reach) {
	body := n.Body()
	// Immediately-invoked literals are calls, not allocations; panic
	// arguments evaluate on the failure path only.
	invoked := map[*ast.FuncLit]bool{}
	var panicRanges [][2]token.Pos
	walkOwn(body, func(node ast.Node) {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return
		}
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			invoked[lit] = true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := n.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				panicRanges = append(panicRanges, [2]token.Pos{call.Pos(), call.End()})
			}
		}
	})
	inPanic := func(pos token.Pos) bool {
		for _, r := range panicRanges {
			if pos >= r[0] && pos < r[1] {
				return true
			}
		}
		return false
	}
	path := reach.Path(n)
	for _, stmt := range body.List {
		ast.Inspect(stmt, func(node ast.Node) bool {
			if lit, ok := node.(*ast.FuncLit); ok {
				if !invoked[lit] && !inPanic(lit.Pos()) {
					mp.Reportf(lit.Pos(), "hotalloc",
						"hoist the closure out of the hot path, or mark the enclosing function //amr:cold if this path is not hot",
						path, "closure allocated in hot path")
				}
				return false // the literal's own body is its own node
			}
			return true
		})
	}
	walkOwn(body, func(node ast.Node) {
		if inPanic(node.Pos()) {
			return
		}
		switch e := node.(type) {
		case *ast.UnaryExpr:
			if e.Op.String() != "&" {
				return
			}
			if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				mp.Reportf(e.Pos(), "hotalloc",
					"reuse a pooled or scratch instance instead of allocating per event",
					path, "composite allocated (&T{…}) in hot path")
			}
		case *ast.CallExpr:
			ha.checkCall(mp, n, e, path)
		}
	})
}

func (ha HotAlloc) checkCall(mp *ModulePass, n *FuncNode, call *ast.CallExpr, path []string) {
	// Type conversions are not calls.
	if tv, ok := n.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := n.Pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				mp.Reportf(call.Pos(), "hotalloc",
					"reuse a pooled or scratch instance instead of allocating per event",
					path, "new(T) in hot path")
			case "make":
				mp.Reportf(call.Pos(), "hotalloc",
					"preallocate the container outside the hot path and reuse it",
					path, "make(…) in hot path")
			}
			return
		}
	}
	// Interface boxing at argument positions of resolvable signatures.
	sigT := n.Pkg.Info.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			continue // f(args...) forwards the slice as-is: no box
		}
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len()-1 {
			pi = sig.Params().Len() - 1
		}
		if pi >= sig.Params().Len() {
			break
		}
		pt := sig.Params().At(pi).Type()
		if sig.Variadic() && pi == sig.Params().Len()-1 {
			if sl, ok := pt.(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if !types.IsInterface(pt) {
			continue
		}
		if _, isTypeParam := pt.(*types.TypeParam); isTypeParam {
			continue
		}
		at := n.Pkg.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if tv, ok := n.Pkg.Info.Types[arg]; ok && tv.IsNil() {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // pointer fits in the interface word, no box
		}
		mp.Reportf(arg.Pos(), "hotalloc",
			"pass a pointer, use a concrete-typed API, or mark this path //amr:cold",
			path, "interface boxing: %s value passed to interface parameter in hot path",
			types.TypeString(at, types.RelativeTo(n.Pkg.Types)))
	}
}
