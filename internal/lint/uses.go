package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// mustConsume is the shared machinery behind the reqleak and spanpair rules:
// every call matched by isProducer yields a value that must be consumed —
// passed to another call, returned, stored into a field/map/global, or (via
// append chains) accumulated into a slice that is itself consumed. A
// produced value that is discarded, assigned to the blank identifier, or
// parked in a local that is never touched again is reported.
//
// The analysis is deliberately syntactic and conservative: any genuine use
// of the value counts as consumption, so it cannot prove that a Wait happens
// on *all* paths (that is what the runtime freed-marker panics are for); it
// catches the leak shapes that survive review — results dropped on the
// floor and request slices built up and forgotten.
func mustConsume(pass *Pass, rule, fix string, isProducer func(*Pass, *ast.CallExpr) bool, what string) {
	mustConsumeVia(pass, rule, fix, isProducer, what, nil)
}

// mustConsumeVia is mustConsume with an interprocedural consumption test:
// when consumes is non-nil, passing a tracked value as argument argIdx of a
// call only counts as consumption if consumes(pass, call, argIdx) says so
// (the reqleak summaries answer "does that helper actually handle its
// request parameter?"). nil keeps the purely local rule: any call consumes.
func mustConsumeVia(pass *Pass, rule, fix string, isProducer func(*Pass, *ast.CallExpr) bool, what string, consumes func(*Pass, *ast.CallExpr, int) bool) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkConsume(pass, fn.Body, rule, fix, isProducer, what, consumes)
		}
	}
}

func checkConsume(pass *Pass, body *ast.BlockStmt, rule, fix string, isProducer func(*Pass, *ast.CallExpr) bool, what string, consumes func(*Pass, *ast.CallExpr, int) bool) {
	// Pending objects: locals holding a produced (or producer-accumulating)
	// value, keyed by object, valued by the position to report.
	pending := map[types.Object]token.Pos{}

	walkStack(body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isProducer(pass, call) {
			return
		}
		parent := parentNode(stack)
		switch p := parent.(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), rule, fix, "%s result discarded", what)
		case *ast.AssignStmt:
			idx := rhsIndex(p.Rhs, call)
			if idx < 0 || len(p.Lhs) != len(p.Rhs) {
				return // multi-value or unusual shape: treat as consumed
			}
			trackTarget(pass, body, p.Lhs[idx], call.Pos(), pending, rule, fix, what)
		case *ast.ValueSpec:
			idx := rhsIndex(p.Values, call)
			if idx < 0 || len(p.Names) != len(p.Values) {
				return
			}
			if obj := pass.ObjectOf(p.Names[idx]); obj != nil && localTo(body, obj) {
				pending[obj] = call.Pos()
			}
		case *ast.CallExpr:
			// Argument to another call. For append, the produced value lands
			// in the target slice: track the slice instead.
			if isAppend(pass, p) {
				if tgt := appendTarget(pass, p, stack); tgt != nil && localTo(body, tgt) {
					if _, seen := pending[tgt]; !seen {
						pending[tgt] = call.Pos()
					}
				}
				return
			}
			// Any other call consumes the value directly — unless the
			// interprocedural test says the callee never handles it.
			if consumes != nil {
				if idx := rhsIndex(p.Args, call); idx >= 0 && !consumes(pass, p, idx) {
					pass.Reportf(call.Pos(), rule, fix,
						"%s passed to a helper that never waits on or stores it", what)
				}
			}
		default:
			// Return, composite literal, channel send, index store, …:
			// the value escapes; nothing to track.
		}
	})

	// A pending object is consumed by any use that is not (a) the lhs of an
	// assignment whose rhs is an append back into the same object, or (b)
	// the self-argument of such an append. An append of the object's value
	// into another local slice transfers the obligation to that slice.
	for changed := true; changed; {
		changed = false
		walkStack(body, func(n ast.Node, stack []ast.Node) {
			id, ok := n.(*ast.Ident)
			if !ok {
				return
			}
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil {
				return
			}
			if _, tracked := pending[obj]; !tracked {
				return
			}
			switch {
			case isAssignLhs(id, stack):
				// Re-assignment, not a use.
			case isSelfAppendArg(pass, id, obj, stack):
				// reqs = append(reqs, …): the slice feeding itself.
			default:
				if tgt, ok := appendedInto(pass, id, stack); ok {
					// Value appended into another slice: the obligation
					// moves to that slice.
					if tgt != nil && localTo(body, tgt) {
						if _, seen := pending[tgt]; !seen {
							pending[tgt] = pending[obj]
							changed = true
						}
					}
					delete(pending, obj)
					changed = true
					return
				}
				if consumes != nil {
					// An argument position whose callee never handles the
					// value is not a use: the obligation stays pending.
					if call, isCall := parentNode(stack).(*ast.CallExpr); isCall && !isAppend(pass, call) {
						if idx := argIndex(call, id); idx >= 0 && !consumes(pass, call, idx) {
							return
						}
					}
				}
				delete(pending, obj) // genuinely consumed
				changed = true
			}
		})
	}

	for obj, pos := range pending {
		pass.Reportf(pos, rule, fix, "%s stored in %q but never consumed", what, obj.Name())
	}
}

// walkStack walks the AST calling fn with each node and the stack of its
// ancestors (outermost first, excluding n itself).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// parentNode returns the nearest non-paren ancestor.
func parentNode(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

func rhsIndex(rhs []ast.Expr, call *ast.CallExpr) int {
	for i, e := range rhs {
		if ast.Unparen(e) == call {
			return i
		}
	}
	return -1
}

// trackTarget records the assignment target of a produced value: a local
// ident becomes pending, an index store into a local slice tracks the slice,
// blank is an immediate report, anything else escapes.
func trackTarget(pass *Pass, body *ast.BlockStmt, lhs ast.Expr, at token.Pos, pending map[types.Object]token.Pos, rule, fix, what string) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			pass.Reportf(at, rule, fix, "%s assigned to the blank identifier", what)
			return
		}
		if obj := pass.ObjectOf(l); obj != nil && localTo(body, obj) {
			pending[obj] = at
		}
	case *ast.IndexExpr:
		if base, ok := ast.Unparen(l.X).(*ast.Ident); ok {
			if obj := pass.ObjectOf(base); obj != nil && localTo(body, obj) {
				if _, seen := pending[obj]; !seen {
					pending[obj] = at
				}
			}
		}
	}
}

// localTo reports whether obj is declared inside body (package-level and
// parameter objects escape the analysis).
func localTo(body *ast.BlockStmt, obj types.Object) bool {
	return obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
}

func isAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// appendTarget resolves the object that an append call's result is assigned
// to: a plain ident (local or package-level) or a field selector
// (m.ordered = append(m.ordered, …) resolves to the field). nil when the
// result lands anywhere else.
func appendTarget(pass *Pass, appendCall *ast.CallExpr, stack []ast.Node) types.Object {
	for i := len(stack) - 1; i >= 0; i-- {
		if as, ok := stack[i].(*ast.AssignStmt); ok {
			idx := rhsIndex(as.Rhs, appendCall)
			if idx < 0 || len(as.Lhs) != len(as.Rhs) {
				return nil
			}
			switch lhs := ast.Unparen(as.Lhs[idx]).(type) {
			case *ast.Ident:
				return pass.ObjectOf(lhs)
			case *ast.SelectorExpr:
				return pass.Pkg.Info.Uses[lhs.Sel]
			}
			return nil
		}
	}
	return nil
}

// isAssignLhs reports whether id appears on the left-hand side of an
// assignment — either directly (s = …) or as the base of an index store
// (s[i] = …), which stores into the tracked container rather than consuming
// it.
func isAssignLhs(id *ast.Ident, stack []ast.Node) bool {
	var target ast.Expr = id
	parent := parentNode(stack)
	if ix, ok := parent.(*ast.IndexExpr); ok && ast.Unparen(ix.X) == id {
		target = ix
		parent = parentNode(stack[:len(stack)-1])
	}
	as, ok := parent.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, l := range as.Lhs {
		if ast.Unparen(l) == target {
			return true
		}
	}
	return false
}

// isSelfAppendArg reports whether id is the first argument of an append that
// assigns back into the same object (s = append(s, …)).
func isSelfAppendArg(pass *Pass, id *ast.Ident, obj types.Object, stack []ast.Node) bool {
	call, ok := parentNode(stack).(*ast.CallExpr)
	if !ok || !isAppend(pass, call) || len(call.Args) == 0 || ast.Unparen(call.Args[0]) != id {
		return false
	}
	return appendTarget(pass, call, stack) == obj
}

// appendedInto reports whether id is a non-first argument of an append call,
// returning the append's assignment target when so.
func appendedInto(pass *Pass, id *ast.Ident, stack []ast.Node) (types.Object, bool) {
	call, ok := parentNode(stack).(*ast.CallExpr)
	if !ok || !isAppend(pass, call) {
		return nil, false
	}
	for _, a := range call.Args[1:] {
		if ast.Unparen(a) == id {
			return appendTarget(pass, call, stack), true
		}
	}
	return nil, false
}
