package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrDrop flags module-internal error results that never reach a check —
// the PR 9 class, where a tql.Exec error was discarded and a malformed
// query ran as an empty result. Three shapes:
//
//  1. A call whose error result is dropped on the floor (expression
//     statement) or assigned to the blank identifier.
//  2. An error local that is assigned and never read anywhere in the
//     function (reads inside closures and defers count; `_ = err` does not —
//     that is the laundering shape the compiler's unused check forces, not
//     a check).
//  3. An error local overwritten by a later assignment in the same block
//     with no intervening read.
//
// Only calls resolving to module functions are considered, and functions
// whose error results are statically nil on every path (the errNil summary,
// propagated through wrappers) are exempt — ignoring an error that cannot
// be non-nil is not a drop. Named results are exempt from shape 2/3 (their
// reads can be implicit in a naked return or a deferred mutation).
//
// Runtime counterpart: failures surface as silently-empty tables or
// half-applied configuration; there is no audit that can catch a swallowed
// error at run time, which is why this rule exists.
type ErrDrop struct{}

func (ErrDrop) Name() string { return "errdrop" }
func (ErrDrop) Doc() string {
	return "module-internal error results must be checked, not discarded or overwritten"
}

// Run is unused: ErrDrop is a ModuleAnalyzer.
func (ErrDrop) Run(*Pass) {}

func (ed ErrDrop) RunModule(mp *ModulePass) {
	for _, n := range mp.Graph.Nodes {
		if n.Body() == nil {
			continue
		}
		ed.checkDiscards(mp, n)
		ed.checkLocals(mp, n)
	}
}

// droppableError reports whether a call resolves to a module function that
// can actually return a non-nil error, returning the callee for the
// message.
func droppableError(mp *ModulePass, n *FuncNode, call *ast.CallExpr) (*FuncNode, bool) {
	callee := staticCallee(mp.Graph, n.Pkg, call)
	if callee == nil {
		return nil, false
	}
	if len(errorResultSlots(callee)) == 0 {
		return nil, false
	}
	if mp.Sums.ErrAlwaysNil(callee) {
		return nil, false
	}
	return callee, true
}

// checkDiscards flags shape 1: floor drops and blank assignments.
func (ed ErrDrop) checkDiscards(mp *ModulePass, n *FuncNode) {
	walkOwn(n.Body(), func(node ast.Node) {
		switch stmt := node.(type) {
		case *ast.ExprStmt:
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return
			}
			if callee, bad := droppableError(mp, n, call); bad {
				mp.Reportf(call.Pos(), "errdrop",
					"check the error (or waive with the reason it is ignorable)", nil,
					"error result of %s discarded", callee.Name)
			}
		case *ast.AssignStmt:
			ed.checkBlankAssign(mp, n, stmt)
		}
	})
}

// checkBlankAssign flags an error slot landing in the blank identifier.
func (ed ErrDrop) checkBlankAssign(mp *ModulePass, n *FuncNode, stmt *ast.AssignStmt) {
	blankAt := func(i int) bool {
		id, ok := ast.Unparen(stmt.Lhs[i]).(*ast.Ident)
		return ok && id.Name == "_"
	}
	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		// Multi-assign from one call: slot i of the callee's results.
		call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		callee, bad := droppableError(mp, n, call)
		if !bad {
			return
		}
		for _, i := range errorResultSlots(callee) {
			if i < len(stmt.Lhs) && blankAt(i) {
				mp.Reportf(stmt.Lhs[i].Pos(), "errdrop",
					"bind and check the error", nil,
					"error result of %s assigned to the blank identifier", callee.Name)
			}
		}
		return
	}
	if len(stmt.Rhs) != len(stmt.Lhs) {
		return
	}
	for i := range stmt.Lhs {
		if !blankAt(i) {
			continue
		}
		call, ok := ast.Unparen(stmt.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		if callee, bad := droppableError(mp, n, call); bad && isErrorType(n.Pkg.Info.TypeOf(call)) {
			mp.Reportf(stmt.Lhs[i].Pos(), "errdrop",
				"bind and check the error", nil,
				"error result of %s assigned to the blank identifier", callee.Name)
		}
	}
}

// errUse is one appearance of an error local.
type errUse struct {
	pos   token.Pos
	write bool
	// from is the module callee the write's value came from (nil when the
	// write is not a flaggable module-call assignment).
	from *FuncNode
}

// checkLocals flags shapes 2 and 3 over every error-typed local declared in
// the function body.
func (ed ErrDrop) checkLocals(mp *ModulePass, n *FuncNode) {
	body := n.Body()
	// Collect error-typed locals declared in this function's own body.
	locals := map[*types.Var][]errUse{}
	walkOwn(body, func(node ast.Node) {
		id, ok := node.(*ast.Ident)
		if !ok {
			return
		}
		// The blank identifier is checkBlankAssign's finding, not a local.
		if v, ok := n.Pkg.Info.Defs[id].(*types.Var); ok && v.Name() != "_" &&
			isErrorType(v.Type()) && localTo(body, v) {
			locals[v] = nil
		}
	})
	if len(locals) == 0 {
		return
	}
	// One pass over assignments classifies identifiers up front: write
	// targets do not count as reads, and `_ = err` appearances satisfy the
	// compiler's unused check without checking anything, so they do not
	// count as reads either.
	skipRead := map[*ast.Ident]bool{}
	ast.Inspect(body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				skipRead[id] = true
			}
		}
		if len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			lhs, lok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			rhs, rok := ast.Unparen(as.Rhs[i]).(*ast.Ident)
			if lok && rok && lhs.Name == "_" {
				skipRead[rhs] = true
			}
		}
		return true
	})
	// Collect every use, reads included, across nested closures and defers:
	// a read anywhere means the error is checked somewhere.
	ast.Inspect(body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if ok {
			ed.recordWrites(mp, n, as, locals)
			return true
		}
		if id, isID := node.(*ast.Ident); isID && !skipRead[id] {
			v := objVar(n.Pkg, id)
			if v == nil {
				return true
			}
			if _, tracked := locals[v]; tracked && n.Pkg.Info.Defs[id] == nil {
				locals[v] = append(locals[v], errUse{pos: id.Pos(), write: false})
			}
		}
		return true
	})
	for v, uses := range locals {
		ed.reportLocal(mp, n, v, uses)
	}
}

// recordWrites registers assignment uses of tracked error locals, noting
// the module callee when the assigned value is a flaggable call result.
func (ed ErrDrop) recordWrites(mp *ModulePass, n *FuncNode, as *ast.AssignStmt, locals map[*types.Var][]errUse) {
	for i, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		v := objVar(n.Pkg, id)
		if v == nil {
			continue
		}
		if _, tracked := locals[v]; !tracked {
			continue
		}
		use := errUse{pos: id.Pos(), write: true}
		var call *ast.CallExpr
		if len(as.Rhs) == 1 {
			call, _ = ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		} else if i < len(as.Rhs) {
			call, _ = ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
		}
		if call != nil {
			if callee, bad := droppableError(mp, n, call); bad {
				use.from = callee
			}
		}
		locals[v] = append(locals[v], use)
	}
}

// reportLocal applies shapes 2 and 3 to one local's use list.
func (ed ErrDrop) reportLocal(mp *ModulePass, n *FuncNode, v *types.Var, uses []errUse) {
	reads := 0
	for _, u := range uses {
		if !u.write {
			reads++
		}
	}
	var flagWrites []errUse
	for _, u := range uses {
		if u.write && u.from != nil {
			flagWrites = append(flagWrites, u)
		}
	}
	if len(flagWrites) == 0 {
		return
	}
	if reads == 0 {
		u := flagWrites[0]
		mp.Reportf(u.pos, "errdrop",
			"check the error after the call", nil,
			"error from %s assigned to %q but never checked", u.from.Name, v.Name())
		return
	}
	// Shape 3: a flaggable write followed by another write with no read in
	// between (source-position ordering — writes in different branches of
	// the same statement do not order before each other, so this only fires
	// for genuinely sequential overwrites).
	for _, u := range flagWrites {
		var nextWrite token.Pos = -1
		for _, w := range uses {
			if w.write && w.pos > u.pos && (nextWrite < 0 || w.pos < nextWrite) {
				nextWrite = w.pos
			}
		}
		if nextWrite < 0 {
			continue
		}
		readBetween := false
		for _, r := range uses {
			if !r.write && r.pos > u.pos && r.pos < nextWrite {
				readBetween = true
				break
			}
		}
		if !readBetween && sameBlockSequential(n, v, u.pos, nextWrite) {
			mp.Reportf(u.pos, "errdrop",
				"check the error before the next assignment", nil,
				"error from %s overwritten before any check", u.from.Name)
		}
	}
}

// sameBlockSequential reports whether two positions fall in statements of
// the same block statement list — i.e. the second genuinely executes after
// the first, rather than in a sibling branch.
func sameBlockSequential(n *FuncNode, v *types.Var, a, b token.Pos) bool {
	found := false
	ast.Inspect(n.Body(), func(node ast.Node) bool {
		if found {
			return false
		}
		block, ok := node.(*ast.BlockStmt)
		if !ok {
			return true
		}
		ai, bi := -1, -1
		for i, stmt := range block.List {
			if a >= stmt.Pos() && a <= stmt.End() {
				ai = i
			}
			if b >= stmt.Pos() && b <= stmt.End() {
				bi = i
			}
		}
		if ai >= 0 && bi >= 0 && ai != bi {
			found = true
		}
		return true
	})
	return found
}

// objVar resolves an identifier to its variable object via Uses or Defs.
func objVar(pkg *Package, id *ast.Ident) *types.Var {
	if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}
