// Package errdrop exercises the error-drop rule: module-internal error
// results that never reach a check — discarded, blanked, assigned and never
// read, or overwritten before any read. Functions whose error results are
// statically always nil (directly or through wrappers) are exempt.
package errdrop

import "errors"

// fallible is a module function that can really fail.
func fallible() error { return errors.New("boom") }

// pair returns a value and an error.
func pair() (int, error) { return 0, errors.New("boom") }

// neverFails cannot return a non-nil error; ignoring it is not a drop.
func neverFails() error { return nil }

// wraps inherits always-nil through the summary fixpoint.
func wraps() error { return neverFails() }

// FloorDrop discards the result as an expression statement.
func FloorDrop() {
	fallible() // want `error result of .*fallible discarded`
}

// Blanked hides the error in the blank identifier, in both assignment
// shapes.
func Blanked() int {
	_ = fallible() // want `error result of .*fallible assigned to the blank identifier`
	v, _ := pair() // want `error result of .*pair assigned to the blank identifier`
	return v
}

// NeverRead binds the error but no path ever looks at it: `_ = err` only
// launders the compiler's unused check, it is not a check.
func NeverRead() int {
	n, err := pair() // want `error from .*pair assigned to "err" but never checked`
	_ = err
	return n
}

// Overwritten checks only the second error; the first is clobbered in the
// same statement sequence with no read in between.
func Overwritten() error {
	err := fallible() // want `error from .*fallible overwritten before any check`
	err = fallible()
	return err
}

// Checked is the canonical correct shape.
func Checked() error {
	if err := fallible(); err != nil {
		return err
	}
	n, err := pair()
	if err != nil {
		return err
	}
	_ = n
	return nil
}

// AlwaysNilExempt drops results that cannot be non-nil — no diagnostics,
// including through the wrapper.
func AlwaysNilExempt() {
	neverFails()
	wraps()
	_ = neverFails()
}

// BranchWrites assigns in sibling branches: neither overwrite is
// sequential, so shape 3 stays quiet, and the final read covers shape 2.
func BranchWrites(flip bool) error {
	var err error
	if flip {
		err = fallible()
	} else {
		err = fallible()
	}
	return err
}

// ClosureRead counts a read inside a deferred closure as a check.
func ClosureRead() {
	err := fallible()
	defer func() {
		if err != nil {
			panic(err)
		}
	}()
}
