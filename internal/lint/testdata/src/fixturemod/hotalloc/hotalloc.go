// Package hotalloc exercises the hot-path allocation rule: closures,
// composites, make/new, and interface boxing reachable from //amr:hotpath
// roots, with //amr:cold pruning and the panic-argument exemption.
package hotalloc

import "fmt"

// event is a pooled payload.
type event struct {
	t   float64
	tag int
}

// pool is the freelist the hot path should draw from.
var pool []*event

// sink is an interface-typed parameter: concrete non-pointer arguments box.
func sink(v interface{}) { _ = v }

// sinkAll is the variadic form.
func sinkAll(vs ...interface{}) { _ = vs }

// Step is the per-event dispatch loop — the annotated root.
//
//amr:hotpath
func Step(n int) {
	for i := 0; i < n; i++ {
		f := func() { _ = i } // want `closure allocated in hot path`
		f()
		e := &event{t: float64(i)} // want `composite allocated \(&T\{…\}\) in hot path`
		buf := make([]byte, 64)    // want `make\(…\) in hot path`
		p := new(event)            // want `new\(T\) in hot path`
		sink(i)                    // want `interface boxing: int value passed to interface parameter in hot path`
		_, _, _ = e, buf, p
		dispatch(i)
	}
}

// dispatch is not annotated but is reachable from Step, so its allocations
// are flagged with a call-path witness.
func dispatch(tag int) {
	if tag < 0 {
		// Panic arguments evaluate on the failure path only: the Sprintf
		// boxing and the slice it builds are exempt.
		panic(fmt.Sprintf("hotalloc: negative tag %d", tag))
	}
	sink(tag) // want `interface boxing: int value passed to interface parameter in hot path`
	audit(tag)
}

// audit is one-time error-path machinery: //amr:cold prunes the traversal,
// so nothing below it is flagged.
//
//amr:cold
func audit(tag int) {
	msgs := make([]string, 0, 8)
	msgs = append(msgs, fmt.Sprint(tag))
	sink(msgs)
}

// Pooled is the clean hot loop: reuse, pointer arguments, immediately
// invoked literals, and spread forwarding allocate nothing new.
//
//amr:hotpath
func Pooled(n int, scratch []byte, args []interface{}) {
	for i := 0; i < n; i++ {
		var e *event
		if k := len(pool); k > 0 {
			e, pool = pool[k-1], pool[:k-1]
		} else {
			continue
		}
		e.tag = i
		func() { e.t = float64(i) }() // immediately invoked: a call, not an allocation
		sink(e)                       // pointer fits the interface word: no box
		sinkAll(args...)              // spread forwards the slice as-is: no box
		scratch = scratch[:0]
		pool = append(pool, e)
	}
}
