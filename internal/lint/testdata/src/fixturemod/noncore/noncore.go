// Package noncore shows the determinism rule is scoped: wall-clock use
// outside the configured core set is legal and produces no diagnostics.
package noncore

import "time"

// Stamp is a legitimate wall-clock read in a non-core package.
func Stamp() int64 { return time.Now().UnixNano() }
