// Package planecross exercises the two-plane instrument discipline:
// sim-plane (laned) instruments only from window-phase contexts, host-plane
// (atomic) instruments only from host contexts. Reads are free both ways.
package planecross

import (
	"net/http"

	"fixturemod/metrics"
)

// Engine mimics the DES entry-point shape for window-phase roots.
type Engine struct{ fs []func() }

// Spawn registers a window-phase closure.
func (e *Engine) Spawn(f func()) { e.fs = append(e.fs, f) }

var (
	simCtr   = metrics.NewCounter(8)
	simSum   = &metrics.Sum{}
	hostCtr  = &metrics.HostCounter{}
	hostLoad = &metrics.HostGauge{}
)

// Window records per-event counts. The laned increment is the intended
// pattern; the atomic update from inside a window is the contention-and-
// determinism bug the rule flags.
func Window(e *Engine, lanes int) {
	for l := 0; l < lanes; l++ {
		lane := l
		e.Spawn(func() {
			simCtr.Inc(lane)
			hostCtr.Inc() // want `host-plane instrument HostCounter.Inc updated from a window-phase context`
		})
	}
}

// Serve spawns the host-plane pump goroutine.
func Serve() {
	go pump()
}

// pump is a host-plane context: the laned counter is unsynchronized, so
// updating it here races with the window phase.
func pump() {
	simCtr.Inc(0) // want `sim-plane instrument Counter.Inc updated from a host-plane context`
	hostLoad.Set(simCtr.Value())
}

// Handle is handler-shaped, hence a host root even without a go statement.
func Handle(w http.ResponseWriter, r *http.Request) {
	simSum.Add(0, 1) // want `sim-plane instrument Sum.Add updated from a host-plane context`
	hostCtr.Add(1)
}
