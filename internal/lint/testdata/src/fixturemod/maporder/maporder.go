// Package maporder exercises the map-iteration-order rule: sinks inside map
// ranges, the collect-then-sort idiom, and order-independent write-backs.
package maporder

import (
	"fmt"
	"sort"
)

// Table is a minimal ordered sink with an Append method.
type Table struct{ rows []string }

// Append records one row; row order is the table's meaning.
func (t *Table) Append(row string) { t.rows = append(t.rows, row) }

// EmitUnsorted feeds an ordered sink from inside a map range; the diagnostic
// lands on the sink call.
func EmitUnsorted(m map[string]int, t *Table) {
	for k := range m {
		t.Append(k) // want `map iteration reaches ordered sink Append`
	}
}

// PrintUnsorted hits the printer family of sinks.
func PrintUnsorted(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `map iteration reaches ordered sink Println`
	}
}

// CollectNoSort appends to a local slice and never sorts it; the diagnostic
// lands on the range statement.
func CollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration appends to "keys", which is never sorted`
		keys = append(keys, k)
	}
	return keys
}

// CollectThenSort is the blessed idiom: collect, sort, then consume.
func CollectThenSort(m map[string]int, t *Table) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t.Append(k)
	}
}

// WriteBack only writes into another map — order-independent, no diagnostic.
func WriteBack(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v + 1
	}
	return out
}
