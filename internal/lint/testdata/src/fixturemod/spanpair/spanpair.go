// Package spanpair exercises the span-pairing rule against a miniature of
// the internal/trace surface: Begin returns an Open handle that must reach
// End/EndRaw (defer counts) or escape.
package spanpair

// Open is the span handle shape the rule matches on.
type Open struct{ t0 float64 }

// End closes the span.
func (o Open) End(t1 float64) {}

// EndRaw closes the span without step/epoch stamping.
func (o Open) EndRaw(t1 float64) {}

// Recorder produces Open handles from Begin.
type Recorder struct{}

// Begin opens a span.
func (Recorder) Begin(rank int32, t0 float64) Open { return Open{t0: t0} }

// Dropped opens a span that can never be closed.
func Dropped(r Recorder) {
	r.Begin(0, 1.5) // want `span Begin handle result discarded`
}

// Blanked hides the lost span behind the blank identifier.
func Blanked(r Recorder) {
	_ = r.Begin(0, 2.5) // want `span Begin handle assigned to the blank identifier`
}

// Paired closes the span explicitly.
func Paired(r Recorder) {
	sp := r.Begin(1, 0)
	sp.End(1)
}

// Deferred closes the span via defer.
func Deferred(r Recorder) {
	sp := r.Begin(2, 0)
	defer sp.EndRaw(3)
}

// EscapesOpen hands the open span to the caller to close.
func EscapesOpen(r Recorder) Open { return r.Begin(3, 0) }
