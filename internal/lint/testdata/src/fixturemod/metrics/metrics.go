// Package metrics is a miniature of the real two-plane instrument surface
// for the planecross fixtures. The analyzer matches instruments by package
// name ("metrics"), type name, and method name, so these stand-ins exercise
// the rule without importing the real module.
package metrics

import "sync/atomic"

// Counter is a laned sim-plane counter: unsynchronized, owned by the
// window phase.
type Counter struct{ v []int64 }

// NewCounter sizes the counter for n lanes.
func NewCounter(n int) *Counter { return &Counter{v: make([]int64, n)} }

// Inc bumps one lane.
func (c *Counter) Inc(lane int) { c.v[lane]++ }

// Add adds to one lane.
func (c *Counter) Add(lane int, d int64) { c.v[lane] += d }

// Value sums the lanes — a read, free from either plane.
func (c *Counter) Value() int64 {
	var t int64
	for _, x := range c.v {
		t += x
	}
	return t
}

// Sum is a laned sim-plane accumulator.
type Sum struct{ v []float64 }

// Add accumulates into one lane.
func (s *Sum) Add(lane int, d float64) { s.v[lane] += d }

// Histogram is a laned sim-plane histogram.
type Histogram struct{ n []int64 }

// Observe records one sample into a lane's bucket 0 (enough for the rule).
func (h *Histogram) Observe(lane int, x float64) { h.n[lane]++ }

// HostCounter is an atomic host-plane counter.
type HostCounter struct{ v atomic.Int64 }

// Inc bumps the counter.
func (c *HostCounter) Inc() { c.v.Add(1) }

// Add adds a delta.
func (c *HostCounter) Add(d int64) { c.v.Add(d) }

// HostGauge is an atomic host-plane gauge.
type HostGauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *HostGauge) Set(x int64) { g.v.Store(x) }

// SetMax raises the gauge to x if larger.
func (g *HostGauge) SetMax(x int64) {
	for {
		cur := g.v.Load()
		if x <= cur || g.v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// HostHistogram is an atomic host-plane histogram.
type HostHistogram struct{ n atomic.Int64 }

// Observe records one sample.
func (h *HostHistogram) Observe(x float64) { h.n.Add(1) }
