// Package reqleak exercises the request-leak rule against a miniature of
// the internal/mpi surface: Isend/Irecv return *Request, Wait/WaitAll
// retire them. The analyzer matches by method name and result shape, so no
// import of the real mpi package is needed.
package reqleak

// Request mirrors mpi.Request's role in the rule.
type Request struct{ done bool }

// Wait retires a request.
func (r *Request) Wait() { r.done = true }

// Comm produces requests.
type Comm struct{}

// Isend posts a send and returns its request.
func (Comm) Isend(dst int) *Request { return &Request{} }

// Irecv posts a receive and returns its request.
func (Comm) Irecv(src int) *Request { return &Request{} }

// WaitAll retires a batch of requests.
func WaitAll(rs []*Request) {
	for _, r := range rs {
		r.Wait()
	}
}

// Discarded drops the request on the floor.
func Discarded(c Comm) {
	c.Isend(1) // want `Isend/Irecv request result discarded`
}

// Blanked hides the leak behind the blank identifier.
func Blanked(c Comm) {
	_ = c.Irecv(2) // want `Isend/Irecv request assigned to the blank identifier`
}

// Accumulated builds a request batch and forgets to WaitAll it: the
// obligation transferred to the slice is never discharged.
func Accumulated(c Comm, n int) {
	var reqs []*Request
	for i := 0; i < n; i++ {
		reqs = append(reqs, c.Isend(i)) // want `Isend/Irecv request stored in "reqs" but never consumed`
	}
}

// Waited is the canonical correct shape.
func Waited(c Comm) {
	r := c.Isend(1)
	r.Wait()
}

// Batched transfers the obligation through the slice to WaitAll.
func Batched(c Comm, n int) {
	var reqs []*Request
	for i := 0; i < n; i++ {
		reqs = append(reqs, c.Irecv(i))
	}
	WaitAll(reqs)
}

// Escapes returns the request: the caller owns the Wait.
func Escapes(c Comm) *Request { return c.Isend(9) }

// dropIt never waits on or stores its request — passing one here is a leak
// the interprocedural upgrade traces through the summary.
func dropIt(*Request) {}

// waitVia discharges the obligation directly.
func waitVia(r *Request) { r.Wait() }

// forward discharges it one hop further, through the summary fixpoint.
func forward(r *Request) { waitVia(r) }

// PassedToSink hands the fresh request to a helper that ignores it.
func PassedToSink(c Comm) {
	dropIt(c.Isend(3)) // want `Isend/Irecv request passed to a helper that never waits on or stores it`
}

// PassedToWaiter is clean: the helper (and its helper) wait.
func PassedToWaiter(c Comm) {
	waitVia(c.Isend(4))
	forward(c.Irecv(5))
}
