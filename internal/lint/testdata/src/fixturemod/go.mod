module fixturemod

go 1.23
