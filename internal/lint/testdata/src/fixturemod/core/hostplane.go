package core

// This file mirrors the host-plane waiver pattern internal/metrics uses
// (DESIGN.md §11): a core package whose deterministic surface is lint-clean
// can still contain wall-clock/goroutine machinery — live exposition,
// progress pages — as long as every such construct carries a trailing
// `//lint:ignore determinism host-plane: <reason>` waiver naming why the
// value can never feed a simulated result. The first half shows the waived
// (accepted) form; the last function shows that the same constructs
// WITHOUT the waiver are still flagged, so the pattern gates, not exempts.

import "time"

// uptime is campaign-progress display state, like metrics.Campaign.
type uptime struct{ began time.Time }

func newUptime() *uptime {
	return &uptime{
		began: time.Now(), //lint:ignore determinism host-plane: /statusz uptime display only, never feeds simulated results
	}
}

func (u *uptime) elapsed() time.Duration {
	return time.Since(u.began) //lint:ignore determinism host-plane: progress ETA display only
}

// serveLoop mirrors the metrics HTTP accept loop: a goroutine that only
// observes, waived with the host-plane reason.
func serveLoop(done chan struct{}) {
	//lint:ignore determinism host-plane: observer-only accept loop, reads atomics and never touches simulation state
	go func() { <-done }()
}

// unwaivedHostPlane proves the waiver is load-bearing: identical constructs
// without the host-plane waiver still produce determinism diagnostics.
func unwaivedHostPlane() time.Time {
	go func() {}()    // want `goroutine spawn in deterministic core package fixturemod/core`
	return time.Now() // want `wall-clock call time.Now in deterministic core package fixturemod/core`
}
