// Package core is a stand-in deterministic-core package for the amrlint
// fixture suite: TestFixtures runs the determinism analyzer with
// fixturemod/core as its core set, so every forbidden construct below must
// produce exactly the diagnostic named by its want marker.
package core

import (
	"math/rand" // want `import of math/rand in deterministic core package fixturemod/core`
	"os"
	"time"
)

// Clock trips every determinism trigger once.
func Clock() float64 {
	t := time.Now()                 // want `wall-clock call time.Now in deterministic core package fixturemod/core`
	home, _ := os.LookupEnv("HOME") // want `environment lookup os.LookupEnv in deterministic core package fixturemod/core`
	go drain()                      // want `goroutine spawn in deterministic core package fixturemod/core`
	_ = home
	return rand.Float64() + float64(t.UnixNano())
}

func drain() {}

// clockFn shows a bare stored reference — not just a call — is flagged.
var clockFn = time.Now // want `wall-clock call time.Now in deterministic core package fixturemod/core`

var _ = clockFn

// Waived shows the trailing-waiver form: both wall-clock calls are
// suppressed and both waivers count as used. Deleting either waiver makes
// the fixture suite fail with a new unexpected diagnostic.
func Waived() time.Duration {
	start := time.Now()      //lint:ignore determinism fixture: telemetry-only wall clock
	return time.Since(start) //lint:ignore determinism fixture: telemetry-only wall clock
}

// WaivedStandalone shows the standalone form covering the next line.
func WaivedStandalone() {
	//lint:ignore determinism fixture: standalone waiver covers the next line
	time.Sleep(0)
}

// unusedWaiver demonstrates that a waiver suppressing nothing is itself
// flagged under the non-waivable "waiver" rule.
var unusedWaiver = 1 //lint:ignore determinism fixture: suppresses nothing // want `unused waiver for rule determinism`

// Malformed demonstrates a directive missing its reason.
func Malformed() {
	//lint:ignore determinism
	// want-prev `malformed waiver: want //lint:ignore <rule> <reason>`
	_ = unusedWaiver
}
