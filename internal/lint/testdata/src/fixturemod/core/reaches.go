package core

import "fixturemod/util"

// UsesUtil pulls util.Stamp into the core's reachable set: the diagnostic
// lands in util with a call-path witness, not here.
func UsesUtil() int64 { return util.Stamp() }
