package core

// Deterministic is clean core code — a pure reduction with no wall clock,
// ambient randomness, environment lookups, or goroutines — and must produce
// no diagnostics.
func Deterministic(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
