// Package window exercises the sharedmut rule: mutable state shared across
// shard-window or harness-worker contexts without lane discipline. The
// centerpiece is the PR 7 regression re-introduced deliberately — a physics
// problem holding one RNG that every shard's cost query advances through a
// sealed interface — which must be flagged at lint time.
package window

// Engine mimics the DES entry-point shape: function values handed to Spawn
// or At become window-phase roots.
type Engine struct{ fs []func() }

// Spawn registers a window-phase closure.
func (e *Engine) Spawn(f func()) { e.fs = append(e.fs, f) }

// At registers a closure at a virtual time.
func (e *Engine) At(t float64, f func()) { e.fs = append(e.fs, f) }

// RNG is a scalar-state generator: Intn advances state and returns a value,
// the read-modify shape the rule hunts.
type RNG struct{ state uint64 }

// Intn draws the next value in [0, n).
func (r *RNG) Intn(n int) int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int(r.state % uint64(n))
}

// Problem is the sealed interface the cost query dispatches through.
type Problem interface{ Cost(blk int) float64 }

// heatProblem is the PR 7 bug reborn: one RNG shared by every caller of
// Cost, advanced on each query.
type heatProblem struct{ rng *RNG }

// Cost draws from the shared generator — order-dependent across shards.
func (p *heatProblem) Cost(blk int) float64 {
	return float64(p.rng.Intn(100)) // want `order-dependent state advance: .*Intn mutates scalar state of shared "p" and returns a value`
}

// totalDraws is package-level mutable state.
var totalDraws int

// laneDraws is package-level but laned: indexed writes keyed by a
// context-local variable are lane discipline.
var laneDraws [8]int

// SharedThroughInterface wires the PR 7 pattern: the window closure reaches
// heatProblem.Cost only through the sealed Problem interface, so catching
// it requires interface dispatch in the reachability walk.
func SharedThroughInterface(e *Engine, lanes int) float64 {
	var prob Problem = &heatProblem{rng: &RNG{state: 1}}
	total := 0.0
	for l := 0; l < lanes; l++ {
		e.Spawn(func() {
			total += prob.Cost(l) // want `window/worker closure writes captured variable "total" without lane discipline`
		})
	}
	return total
}

// GlobalAndCaptured trips the direct shapes: a package-level write, an
// unlaned shared-RNG draw, and a laned write that passes.
func GlobalAndCaptured(e *Engine, shared *RNG) {
	for l := 0; l < 8; l++ {
		lane := l
		e.At(float64(l), func() {
			totalDraws++        // want `package-level variable "totalDraws" written in shard-window/worker context`
			_ = shared.Intn(10) // want `order-dependent state advance: .*Intn mutates scalar state of shared "shared" and returns a value`
			laneDraws[lane]++   // laned: indexed by the captured per-iteration variable
		})
	}
}

// Arena's mutation protocol is shard ownership, audited at runtime in
// paranoid mode — the annotation is the waiver policy for whole types.
//
//amr:shardowned
type Arena struct{ n int }

// Take hands out the next slot: scalar mutation plus a result, but exempt
// via the type annotation.
func (a *Arena) Take() int {
	a.n++
	return a.n
}

// Disciplined shows the clean patterns: a lane-local RNG bound before use
// and a shard-owned arena.
func Disciplined(e *Engine, rngs []*RNG, arena *Arena) {
	for l := 0; l < len(rngs); l++ {
		lane := l
		e.Spawn(func() {
			r := rngs[lane] // bind this lane's own instance
			laneDraws[lane] += r.Intn(3)
			_ = arena.Take() // //amr:shardowned exempts the type
		})
	}
}

// Spec mimics the harness worker-spec shape: the Run field's function value
// is a worker root.
type Spec struct {
	Name string
	Run  func()
}

// workerBody runs one experiment per call, concurrently across workers.
func workerBody() {
	totalDraws++ // want `package-level variable "totalDraws" written in shard-window/worker context`
}

// Launch installs the worker body.
func Launch() Spec { return Spec{Name: "sweep", Run: workerBody} }
