// Package enums exercises the exhaustive-switch rule on a closed constant
// set and on a sealed interface.
package enums

import "fmt"

// Kind is a closed enum: three variants plus a numKinds sentinel, which
// does not count as a variant.
type Kind uint8

// The Kind variants.
const (
	KindCompute Kind = iota
	KindSend
	KindWait
	numKinds // sentinel terminator, excluded from coverage
)

var _ = numKinds

// Missing omits KindWait with no default.
func Missing(k Kind) string {
	switch k { // want `switch over Kind misses variants KindWait and has no default`
	case KindCompute:
		return "compute"
	case KindSend:
		return "send"
	}
	return ""
}

// Absorbed hides the hole behind a silent default.
func Absorbed(k Kind) string {
	switch k { // want `switch over Kind misses variants KindWait behind a non-panicking default`
	case KindCompute:
		return "compute"
	case KindSend:
		return "send"
	default:
		return "?"
	}
}

// Covered names every variant.
func Covered(k Kind) string {
	switch k {
	case KindCompute:
		return "compute"
	case KindSend:
		return "send"
	case KindWait:
		return "wait"
	}
	return ""
}

// Guarded has a hole but panics on it, which is accepted.
func Guarded(k Kind) string {
	switch k {
	case KindCompute, KindSend:
		return "busy"
	default:
		panic(fmt.Sprintf("enums: unknown kind %d", k))
	}
}

// event is a sealed interface: the unexported method closes the implementer
// set to this module.
type event interface{ isEvent() }

type sendEvent struct{}
type recvEvent struct{}
type tickEvent struct{}

func (sendEvent) isEvent() {}
func (recvEvent) isEvent() {}
func (tickEvent) isEvent() {}

// Dispatch misses tickEvent with no default.
func Dispatch(e event) string {
	switch e.(type) { // want `switch over event misses variants tickEvent and has no default`
	case sendEvent:
		return "send"
	case recvEvent:
		return "recv"
	}
	return ""
}

// DispatchAll covers the full implementer set.
func DispatchAll(e event) string {
	switch e.(type) {
	case sendEvent:
		return "send"
	case recvEvent:
		return "recv"
	case tickEvent:
		return "tick"
	}
	return ""
}
