// Package util exercises the interprocedural determinism upgrade: it is
// outside the configured core, but Stamp is called from fixturemod/core, so
// its wall-clock read is flagged with a call-path witness. FreeStamp is
// unreachable from the core and stays legal.
package util

import "time"

// Stamp is reached from the core: the wall-clock read is just as
// schedule-visible as if it sat in the core itself.
func Stamp() int64 {
	return time.Now().UnixNano() // want `wall-clock call time.Now in util.Stamp, reachable from the deterministic core`
}

// FreeStamp is never called by core code — scoping still holds.
func FreeStamp() int64 { return time.Now().UnixNano() }
