package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture files under testdata/src/fixturemod mark every expected finding
// with a trailing marker comment:
//
//	code()            // want `regex matched against the message`
//	// want-prev `…`  (expectation for the line above, for lines that
//	                   cannot carry a trailing comment, e.g. waiver lines)
//
// TestFixtures asserts exact agreement: every diagnostic must be claimed by
// a marker and every marker must be hit, so both false positives and false
// negatives fail the suite.
var wantRe = regexp.MustCompile("// want(-prev)? `([^`]+)`")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func collectExpectations(t *testing.T, root string) []*expectation {
	t.Helper()
	var out []*expectation
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, text := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
				line := i + 1
				if m[1] == "-prev" {
					line--
				}
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[2], err)
				}
				out = append(out, &expectation{file: path, line: line, pattern: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatalf("no want markers under %s", root)
	}
	return out
}

// fixtureAnalyzers is the production set with the determinism and
// plane-classification cores pointed at the fixture module's core package.
func fixtureAnalyzers() []Analyzer {
	return []Analyzer{
		NewDeterminism([]string{"fixturemod/core"}),
		MapOrder{},
		ReqLeak{},
		SpanPair{},
		Exhaustive{},
		SharedMut{},
		ErrDrop{},
		HotAlloc{},
		NewPlaneCross([]string{"fixturemod/core"}),
	}
}

func TestFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src", "fixturemod")
	set, err := LoadSet(LoadConfig{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(set, fixtureAnalyzers())
	wants := collectExpectations(t, root)

	for _, d := range diags {
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == d.File && w.line == d.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d.String())
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}
