package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Per-function summaries for the interprocedural rules. Each summary is a
// conservative fact about what a function does to state it does not own:
//
//	recvMut    — does a method mutate its receiver, and if so is every
//	             mutation laned (indexed by a parameter-derived expression,
//	             the metrics-instrument discipline) or is some of it scalar
//	             (a fixed location: an RNG state word, a freelist head)?
//	             Scalar mutation plus a result value is the signature of
//	             order-dependent "read-modify" state — the PR 7 shared-RNG
//	             class.
//	errNeverNil — is every error result of the function statically nil on
//	             every return path? Ignoring such a function's error is not
//	             a dropped error (errdrop uses this to stay quiet).
//	reqParams  — for each *Request/[]*Request parameter: does the function
//	             retire it (Wait), use it, or let it escape? Passing a
//	             request to a helper that does none of these does not
//	             discharge the Wait obligation (reqleak uses this to track
//	             requests through helper calls).
//
// Summaries are computed bottom-up to a fixpoint over the call graph, so a
// method that mutates its receiver only by calling another mutating method,
// or a wrapper that forwards another function's error, classifies the same
// as the direct form.

// RecvMut classifies a method's receiver mutation.
type RecvMut uint8

const (
	// RecvPure means no receiver mutation was found.
	RecvPure RecvMut = iota
	// RecvLaned means every receiver write lands in an element indexed by
	// a parameter-derived expression — the lane discipline.
	RecvLaned
	// RecvScalar means some receiver write hits a fixed location: calls are
	// order-dependent whenever the receiver is shared.
	RecvScalar
)

// Summaries holds every per-function summary, keyed by graph node.
type Summaries struct {
	g *Graph

	recv    map[*FuncNode]RecvMut
	recvPos map[*FuncNode]token.Pos // first scalar write (or propagating call)
	errNil  map[*FuncNode]bool
	// reqHandled[n][i] — parameter i of n (a request-shaped param) is
	// retired/used/escaped. Params absent from the inner map are not
	// request-shaped.
	reqHandled map[*FuncNode]map[int]bool
	// shardOwned holds named types annotated //amr:shardowned: their
	// receiver-mutating methods are exempt from sharedmut's read-modify
	// check because the runtime's shard-ownership protocol (audited by
	// paranoid mode) serializes access.
	shardOwned map[*types.TypeName]bool
}

// RecvMutOf returns the receiver-mutation class of a function (RecvPure for
// non-methods and unknown functions).
func (s *Summaries) RecvMutOf(n *FuncNode) RecvMut { return s.recv[n] }

// RecvMutPos returns the position of the write (or call) that made a method
// RecvScalar.
func (s *Summaries) RecvMutPos(n *FuncNode) token.Pos { return s.recvPos[n] }

// ErrAlwaysNil reports whether every error result of n is statically nil
// on every return path — ignoring such an error is not a dropped error.
func (s *Summaries) ErrAlwaysNil(n *FuncNode) bool { return s.errNil[n] }

// ReqParamHandled reports whether request-shaped parameter i of n is
// retired, used, or escaped. ok is false when i is not request-shaped.
func (s *Summaries) ReqParamHandled(n *FuncNode, i int) (handled, ok bool) {
	m := s.reqHandled[n]
	if m == nil {
		return false, false
	}
	handled, ok = m[i]
	return handled, ok
}

// ShardOwned reports whether a named type carries //amr:shardowned.
func (s *Summaries) ShardOwned(tn *types.TypeName) bool { return s.shardOwned[tn] }

// Summarize computes every summary over the graph.
func Summarize(g *Graph) *Summaries {
	s := &Summaries{
		g:          g,
		recv:       map[*FuncNode]RecvMut{},
		recvPos:    map[*FuncNode]token.Pos{},
		errNil:     map[*FuncNode]bool{},
		reqHandled: map[*FuncNode]map[int]bool{},
		shardOwned: map[*types.TypeName]bool{},
	}
	s.collectShardOwned()
	for _, n := range g.Nodes {
		s.directRecvMut(n)
		s.directErrNil(n)
		s.directReqParams(n)
	}
	s.fixRecvMut()
	s.fixErrNil()
	s.fixReqParams()
	return s
}

// collectShardOwned scans type declarations for the //amr:shardowned
// directive (on the TypeSpec or its enclosing GenDecl).
func (s *Summaries) collectShardOwned() {
	for _, pkg := range s.g.modulePkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if !hasDirective(ts.Doc, "shardowned") && !hasDirective(gd.Doc, "shardowned") {
						continue
					}
					if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
						s.shardOwned[tn] = true
					}
				}
			}
		}
	}
}

// recvObj returns the receiver variable object of a method node (nil for
// functions and literals).
func recvObj(n *FuncNode) *types.Var {
	if n.Decl == nil || n.Decl.Recv == nil || len(n.Decl.Recv.List) == 0 {
		return nil
	}
	names := n.Decl.Recv.List[0].Names
	if len(names) == 0 {
		return nil
	}
	v, _ := n.Pkg.Info.Defs[names[0]].(*types.Var)
	return v
}

// paramObjs returns the declared parameter objects of a node (methods and
// literals included), in order.
func paramObjs(n *FuncNode) []*types.Var {
	var ft *ast.FuncType
	if n.Decl != nil {
		ft = n.Decl.Type
	} else {
		ft = n.Lit.Type
	}
	var out []*types.Var
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if v, ok := n.Pkg.Info.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// directRecvMut scans a method body for direct receiver writes and
// classifies them.
func (s *Summaries) directRecvMut(n *FuncNode) {
	rv := recvObj(n)
	if rv == nil || n.Body() == nil {
		return
	}
	params := map[*types.Var]bool{}
	for _, p := range paramObjs(n) {
		params[p] = true
	}
	byParam := func(v *types.Var) bool { return params[v] }
	note := func(pos token.Pos, laned bool) {
		if laned {
			if s.recv[n] == RecvPure {
				s.recv[n] = RecvLaned
			}
			return
		}
		if s.recv[n] != RecvScalar {
			s.recv[n] = RecvScalar
			s.recvPos[n] = pos
		}
	}
	walkOwn(n.Body(), func(node ast.Node) {
		switch e := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				if base, laned, ok := writeTarget(n.Pkg, lhs, byParam); ok && base == rv {
					note(lhs.Pos(), laned)
				}
			}
		case *ast.IncDecStmt:
			if base, laned, ok := writeTarget(n.Pkg, e.X, byParam); ok && base == rv {
				note(e.X.Pos(), laned)
			}
		}
	})
}

// writeTarget decomposes an lvalue into its base object, reporting whether
// the path goes through an element indexed by an expression the laneVar
// predicate accepts (the lane discipline: a per-shard/per-rank index).
// laneVar may be nil (no index counts as laned). ok is false when the base
// is not a plain identifier.
func writeTarget(pkg *Package, lhs ast.Expr, laneVar func(*types.Var) bool) (base *types.Var, laned bool, ok bool) {
	lanedSoFar := false
	e := ast.Unparen(lhs)
	for {
		switch t := e.(type) {
		case *ast.Ident:
			v, isVar := pkg.Info.Uses[t].(*types.Var)
			if !isVar {
				v, isVar = pkg.Info.Defs[t].(*types.Var)
			}
			if !isVar {
				return nil, false, false
			}
			return v, lanedSoFar, true
		case *ast.SelectorExpr:
			e = ast.Unparen(t.X)
		case *ast.IndexExpr:
			if laneVar != nil && exprMentionsWhere(pkg, t.Index, laneVar) {
				lanedSoFar = true
			}
			e = ast.Unparen(t.X)
		case *ast.StarExpr:
			e = ast.Unparen(t.X)
		default:
			return nil, false, false
		}
	}
}

// exprMentionsWhere reports whether expr references a variable the
// predicate accepts.
func exprMentionsWhere(pkg *Package, expr ast.Expr, pred func(*types.Var) bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := pkg.Info.Uses[id].(*types.Var); ok && pred(v) {
				found = true
			}
		}
		return !found
	})
	return found
}

// fixRecvMut propagates scalar receiver mutation through receiver-chain
// calls: r.helper() or r.field.M() where the callee mutates its own
// receiver makes the calling method a receiver mutator too.
func (s *Summaries) fixRecvMut() {
	for changed := true; changed; {
		changed = false
		for _, n := range s.g.Nodes {
			rv := recvObj(n)
			if rv == nil || n.Body() == nil || s.recv[n] == RecvScalar {
				continue
			}
			walkOwn(n.Body(), func(node ast.Node) {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return
				}
				base, _, okT := writeTarget(n.Pkg, sel.X, nil)
				if !okT || base != rv {
					return
				}
				callee := s.calleeNode(n, call)
				if callee == nil {
					return
				}
				switch s.recv[callee] {
				case RecvScalar:
					if s.recv[n] != RecvScalar {
						s.recv[n] = RecvScalar
						s.recvPos[n] = call.Pos()
						changed = true
					}
				case RecvLaned:
					if s.recv[n] == RecvPure {
						s.recv[n] = RecvLaned
						changed = true
					}
				case RecvPure:
					// Callee does not mutate its receiver; nothing propagates.
				}
			})
		}
	}
}

// calleeNode resolves a call to its static callee node (nil for dynamic,
// interface, and non-module calls).
func (s *Summaries) calleeNode(n *FuncNode, call *ast.CallExpr) *FuncNode {
	return staticCallee(s.g, n.Pkg, call)
}

// staticCallee resolves a call in pkg to its static module callee node
// (nil for dynamic, interface, and non-module calls).
func staticCallee(g *Graph, pkg *Package, call *ast.CallExpr) *FuncNode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return g.NodeOf(obj)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if obj, ok := sel.Obj().(*types.Func); ok && !types.IsInterface(sel.Recv()) {
				return g.NodeOf(obj)
			}
			return nil
		}
		if obj, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return g.NodeOf(obj)
		}
	case *ast.FuncLit:
		return g.byLit[fun]
	}
	return nil
}

// errorResultSlots returns the indices of error-typed results of a node's
// signature (nil when it has none).
func errorResultSlots(n *FuncNode) []int {
	sig := nodeSignature(n)
	if sig == nil || sig.Results() == nil {
		return nil
	}
	var out []int
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			out = append(out, i)
		}
	}
	return out
}

func nodeSignature(n *FuncNode) *types.Signature {
	if n.Obj != nil {
		sig, _ := n.Obj.Type().(*types.Signature)
		return sig
	}
	if n.Lit != nil {
		if tv, ok := n.Pkg.Info.Types[n.Lit]; ok {
			sig, _ := tv.Type.(*types.Signature)
			return sig
		}
	}
	return nil
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// directErrNil seeds errNil: true when every return statement's error slots
// are literal nil (or forward a callee handled by the fixpoint), false
// otherwise. Functions without error results stay absent.
func (s *Summaries) directErrNil(n *FuncNode) {
	slots := errorResultSlots(n)
	if len(slots) == 0 || n.Body() == nil {
		return
	}
	// Named results make nil-ness flow-dependent; stay conservative.
	sig := nodeSignature(n)
	for i := 0; i < sig.Results().Len(); i++ {
		if sig.Results().At(i).Name() != "" {
			s.errNil[n] = false
			return
		}
	}
	s.errNil[n] = true // optimistic; fixErrNil falsifies
}

// fixErrNil drives errNil to its greatest fixpoint: a function stays "never
// non-nil" only while every return's error slots are nil literals or
// spread calls to functions that are themselves never non-nil.
func (s *Summaries) fixErrNil() {
	for changed := true; changed; {
		changed = false
		for _, n := range s.g.Nodes {
			if !s.errNil[n] {
				continue
			}
			if !s.returnsAlwaysNil(n) {
				s.errNil[n] = false
				changed = true
			}
		}
	}
}

func (s *Summaries) returnsAlwaysNil(n *FuncNode) bool {
	slots := errorResultSlots(n)
	sig := nodeSignature(n)
	ok := true
	walkOwn(n.Body(), func(node ast.Node) {
		ret, isRet := node.(*ast.ReturnStmt)
		if !isRet || !ok {
			return
		}
		// Spread return `return f()`: every slot's value, error slots
		// included, is the callee's — defer to its summary.
		if len(ret.Results) == 1 && sig.Results().Len() > 1 {
			callee := s.returnedCallee(n, ret.Results[0])
			if callee == nil || !s.errNil[callee] {
				ok = false
			}
			return
		}
		if len(ret.Results) != sig.Results().Len() {
			ok = false // naked return with named results: already excluded
			return
		}
		for _, i := range slots {
			if tv, found := n.Pkg.Info.Types[ret.Results[i]]; found && tv.IsNil() {
				continue
			}
			// `return ..., f()` in a single error slot: the callee's fact.
			if callee := s.returnedCallee(n, ret.Results[i]); callee != nil && s.errNil[callee] {
				continue
			}
			ok = false
			return
		}
	})
	return ok
}

// returnedCallee resolves a returned call expression to its static callee
// node (nil when the result expression is not a resolvable call).
func (s *Summaries) returnedCallee(n *FuncNode, e ast.Expr) *FuncNode {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	return s.calleeNode(n, call)
}

// isRequestShaped reports whether t is *Request or []*Request (matching by
// type name, like the reqleak producer check, so fixtures work without
// importing the real mpi).
func isRequestShaped(t types.Type) bool {
	if sl, ok := t.(*types.Slice); ok {
		t = sl.Elem()
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Request"
}

// sigParamVars returns the function's parameter variables aligned to
// signature positions; unnamed and blank parameters yield nil entries, so
// indexes line up with call-site argument positions.
func sigParamVars(n *FuncNode) []*types.Var {
	var ft *ast.FuncType
	if n.Decl != nil {
		ft = n.Decl.Type
	} else {
		ft = n.Lit.Type
	}
	if ft.Params == nil {
		return nil
	}
	var out []*types.Var
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			v, _ := n.Pkg.Info.Defs[name].(*types.Var)
			if name.Name == "_" {
				v = nil
			}
			out = append(out, v)
		}
	}
	return out
}

// nodeParamType returns the type of signature parameter i (nil when out of
// range).
func nodeParamType(n *FuncNode, i int) types.Type {
	sig := nodeSignature(n)
	if sig == nil || i >= sig.Params().Len() {
		return nil
	}
	return sig.Params().At(i).Type()
}

// directReqParams seeds reqHandled: for every request-shaped parameter,
// scan the body for a use that retires, touches, or escapes it. Uses that
// only forward the request to a module function are recorded as
// dependencies resolved by fixReqParams. An unnamed or blank request
// parameter can never be handled — the callee cannot even refer to it.
func (s *Summaries) directReqParams(n *FuncNode) {
	if n.Body() == nil {
		return
	}
	m := map[int]bool{}
	for i, p := range sigParamVars(n) {
		if p == nil {
			if t := nodeParamType(n, i); t != nil && isRequestShaped(t) {
				m[i] = false
			}
			continue
		}
		if isRequestShaped(p.Type()) {
			m[i] = s.paramDirectlyHandled(n, p)
		}
	}
	if len(m) > 0 {
		s.reqHandled[n] = m
	}
}

// paramDirectlyHandled reports whether param p is used in a way that
// discharges the Wait obligation without consulting callee summaries:
// any use except (a) pure reassignment and (b) appearing as an argument to
// a module-internal call (resolved later by the fixpoint).
func (s *Summaries) paramDirectlyHandled(n *FuncNode, p *types.Var) bool {
	handled := false
	walkStack(n.Body(), func(node ast.Node, stack []ast.Node) {
		if handled {
			return
		}
		id, ok := node.(*ast.Ident)
		if !ok || n.Pkg.Info.Uses[id] != p {
			return
		}
		if isAssignLhs(id, stack) {
			return // reassignment, not a use
		}
		parent := parentNode(stack)
		// Direct argument to a module-internal call: deferred to fixpoint.
		if call, isC := parent.(*ast.CallExpr); isC && ast.Unparen(call.Fun) != ast.Node(id) {
			if callee := s.calleeNode(n, call); callee != nil && !isAppend2(n.Pkg, call) {
				if argIndex(call, id) >= 0 {
					return
				}
			}
		}
		handled = true
	})
	return handled
}

func isAppend2(pkg *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// argIndex returns the argument position of id in call (-1 when id is not
// a direct argument).
func argIndex(call *ast.CallExpr, id *ast.Ident) int {
	for i, a := range call.Args {
		if ast.Unparen(a) == ast.Node(id) {
			return i
		}
	}
	return -1
}

// fixReqParams resolves forwarded requests: parameter i of f is handled if
// some call in f forwards it to parameter j of g and g handles j. Cyclic
// forwarding with no Wait anywhere stays unhandled — correctly.
func (s *Summaries) fixReqParams() {
	for changed := true; changed; {
		changed = false
		for _, n := range s.g.Nodes {
			m := s.reqHandled[n]
			if m == nil {
				continue
			}
			params := sigParamVars(n)
			for i, done := range m {
				if done || i >= len(params) || params[i] == nil {
					continue
				}
				if s.paramForwardHandled(n, params[i]) {
					m[i] = true
					changed = true
				}
			}
		}
	}
}

// paramForwardHandled reports whether p is passed to a module function
// whose corresponding parameter is handled.
func (s *Summaries) paramForwardHandled(n *FuncNode, p *types.Var) bool {
	handled := false
	walkStack(n.Body(), func(node ast.Node, stack []ast.Node) {
		if handled {
			return
		}
		id, ok := node.(*ast.Ident)
		if !ok || n.Pkg.Info.Uses[id] != p {
			return
		}
		call, isC := parentNode(stack).(*ast.CallExpr)
		if !isC {
			return
		}
		callee := s.calleeNode(n, call)
		if callee == nil {
			return
		}
		if h, ok := s.calleeParamHandled(callee, call, argIndex(call, id)); ok && h {
			handled = true
		}
	})
	return handled
}

// calleeParamHandled maps an argument position to the callee's parameter
// and returns its handled state. ok is false when the position does not map
// to a request-shaped parameter (e.g. the callee is unknown or variadic
// shapes don't line up) — callers treat that as not-forwarded.
func (s *Summaries) calleeParamHandled(callee *FuncNode, call *ast.CallExpr, argIdx int) (handled, ok bool) {
	if argIdx < 0 {
		return false, false
	}
	m := s.reqHandled[callee]
	if m == nil {
		return false, false
	}
	sig := nodeSignature(callee)
	if sig == nil {
		return false, false
	}
	pi := argIdx
	// Method expressions aside, a method call's args align with params.
	if sig.Variadic() && pi >= sig.Params().Len()-1 {
		pi = sig.Params().Len() - 1
	}
	h, present := m[pi]
	return h, present
}
