package lint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON emits one JSON object per line per diagnostic — the -json
// machine-readable mode of cmd/amrlint, consumable by CI annotators a line
// at a time without buffering the whole report.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, d := range diags {
		if err := enc.Encode(d); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSON parses a stream written by WriteJSON back into diagnostics.
func ReadJSON(r io.Reader) ([]Diagnostic, error) {
	dec := json.NewDecoder(r)
	var out []Diagnostic
	for {
		var d Diagnostic
		if err := dec.Decode(&d); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding diagnostic %d: %w", len(out), err)
		}
		out = append(out, d)
	}
}

// Analyzers returns the production analyzer set over the module's default
// deterministic-core package list: the five per-package rules of PR 5 (two
// of them — determinism and reqleak — now interprocedural) plus the four
// call-graph rules.
func Analyzers() []Analyzer {
	return []Analyzer{
		NewDeterminism(nil),
		MapOrder{},
		ReqLeak{},
		SpanPair{},
		Exhaustive{},
		SharedMut{},
		ErrDrop{},
		HotAlloc{},
		NewPlaneCross(nil),
	}
}
