package lint

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	in := []Diagnostic{
		{File: "internal/solver/solver.go", Line: 70, Col: 14, Rule: "determinism",
			Message: "wall-clock call time.Now in deterministic core package amrtools/internal/solver",
			Fix:     "derive times from the DES virtual clock"},
		{File: "internal/lint/waiver.go", Line: 3, Col: 1, Rule: "waiver",
			Message: "unused waiver for rule maporder: no diagnostic suppressed"},
		{File: "internal/physics/heat.go", Line: 41, Col: 9, Rule: "sharedmut",
			Message: `order-dependent state advance: xrand.(*RNG).Intn mutates scalar state of shared "p" and returns a value`,
			Fix:     "give each shard/worker its own instance",
			Path:    []string{"driver.runEpoch$1", "physics.(*heatProblem).Cost"}},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	// One self-contained JSON object per line: CI annotators consume the
	// stream a line at a time without buffering the report.
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(in) {
		t.Fatalf("wrote %d lines for %d diagnostics:\n%s", len(lines), len(in), buf.String())
	}
	for i, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("line %d is not a standalone JSON object: %v", i, err)
		}
	}
	out, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestJSONOmitsEmptyFix(t *testing.T) {
	var buf bytes.Buffer
	err := WriteJSON(&buf, []Diagnostic{{File: "a.go", Line: 1, Col: 1, Rule: "waiver", Message: "m"}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "fix") {
		t.Fatalf("empty fix serialized: %s", buf.String())
	}
	// Per-package diagnostics have no call-path witness; the field must not
	// appear as "path":null noise in the stream.
	if strings.Contains(buf.String(), "path") {
		t.Fatalf("empty path serialized: %s", buf.String())
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"file":"a.go"}` + "\nnot json\n")); err == nil {
		t.Fatal("garbage line decoded without error")
	}
}
