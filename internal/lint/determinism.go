package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DefaultCorePackages is the deterministic core of this module: the packages
// whose outputs must be bit-identical across machines, runs, and harness
// worker counts (DESIGN.md §2). Wall-clock reads, ambient randomness,
// environment lookups, and ad-hoc goroutines inside them make result tables
// machine- or schedule-dependent.
var DefaultCorePackages = []string{
	"amrtools/internal/sim",
	"amrtools/internal/simnet",
	"amrtools/internal/mpi",
	"amrtools/internal/driver",
	"amrtools/internal/placement",
	"amrtools/internal/solver",
	"amrtools/internal/sfc",
	"amrtools/internal/cost",
	"amrtools/internal/mesh",
	"amrtools/internal/physics",
	"amrtools/internal/critpath",
	"amrtools/internal/health",
	"amrtools/internal/check",
	// internal/metrics is core for its simulated plane (laned instruments,
	// registry, snapshots, exposition). Its host-plane files (campaign.go,
	// serve.go) are wall-clock machinery by design and carry per-line
	// `//lint:ignore determinism host-plane: <reason>` waivers — the
	// documented pattern for non-deterministic code inside a core package
	// (DESIGN.md §11).
	"amrtools/internal/metrics",
	// The storage and query layer is core: the same file queried twice (or
	// on two machines) must return bit-identical tables, and the v2 footer
	// index must encode identically for identical input.
	"amrtools/internal/colfile",
	"amrtools/internal/tql",
}

// wallClockFuncs are the time-package functions that read or depend on the
// wall clock (or the scheduler's notion of real time).
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// envFuncs are the os-package ambient-configuration reads.
var envFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
}

// Determinism flags wall-clock reads (time.Now/Since/…), math/rand imports,
// os environment lookups, and goroutine spawns inside the deterministic
// core. Randomness must come from internal/xrand (seeded, stream-split);
// simulated time from the DES engine's virtual clock; configuration from
// Config structs; concurrency from the audited fork-join helpers already in
// place. Telemetry-only wall-clock reads are waivable with a reason.
//
// Runtime counterpart: the j1-vs-jN table-identity tests and the
// differential campaign (internal/check) — they detect the divergence these
// constructs cause, this rule names the construct before a campaign has to.
type Determinism struct {
	// Core is the set of import paths forming the deterministic core.
	Core []string
}

// NewDeterminism returns the determinism analyzer over the given core
// package set (DefaultCorePackages when nil).
func NewDeterminism(core []string) *Determinism {
	if core == nil {
		core = DefaultCorePackages
	}
	return &Determinism{Core: core}
}

func (d *Determinism) Name() string { return "determinism" }
func (d *Determinism) Doc() string {
	return "forbid wall-clock, math/rand, env lookups, and goroutine spawns in the deterministic core"
}

func (d *Determinism) Run(pass *Pass) {
	core := false
	for _, p := range d.Core {
		if pass.Pkg.Path == p {
			core = true
			break
		}
	}
	if !core {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(spec.Pos(), d.Name(),
					"use internal/xrand (seeded, stream-splittable)",
					"import of %s in deterministic core package %s", path, pass.Pkg.Path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), d.Name(),
					"use a deterministic fork-join (fixed partition, WaitGroup, disjoint writes) and waive it with the invariant it preserves",
					"goroutine spawn in deterministic core package %s", pass.Pkg.Path)
			case *ast.SelectorExpr:
				// Flagging the selector rather than a call catches stored
				// references (fn := time.Now) as well as direct calls.
				pkgName, fun := stdlibSelector(pass, n)
				switch {
				case pkgName == "time" && wallClockFuncs[fun]:
					pass.Reportf(n.Pos(), d.Name(),
						"derive times from the DES virtual clock or replace the wall-clock dependence with a deterministic budget",
						"wall-clock call time.%s in deterministic core package %s", fun, pass.Pkg.Path)
				case pkgName == "os" && envFuncs[fun]:
					pass.Reportf(n.Pos(), d.Name(),
						"thread configuration through the package's Config struct",
						"environment lookup os.%s in deterministic core package %s", fun, pass.Pkg.Path)
				}
			}
			return true
		})
	}
}

// stdlibSelector resolves a selector of the form pkg.Fun where pkg is an
// imported package name, returning the package path and function name
// ("" when the selector has another shape, e.g. a method on a value).
func stdlibSelector(pass *Pass, sel *ast.SelectorExpr) (pkgPath, fun string) {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
