package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DefaultCorePackages is the deterministic core of this module: the packages
// whose outputs must be bit-identical across machines, runs, and harness
// worker counts (DESIGN.md §2). Wall-clock reads, ambient randomness,
// environment lookups, and ad-hoc goroutines inside them make result tables
// machine- or schedule-dependent.
var DefaultCorePackages = []string{
	"amrtools/internal/sim",
	"amrtools/internal/simnet",
	"amrtools/internal/mpi",
	"amrtools/internal/driver",
	"amrtools/internal/placement",
	"amrtools/internal/solver",
	"amrtools/internal/sfc",
	"amrtools/internal/cost",
	"amrtools/internal/mesh",
	"amrtools/internal/physics",
	"amrtools/internal/critpath",
	"amrtools/internal/health",
	"amrtools/internal/check",
	// internal/metrics is core for its simulated plane (laned instruments,
	// registry, snapshots, exposition). Its host-plane files (campaign.go,
	// serve.go) are wall-clock machinery by design and carry per-line
	// `//lint:ignore determinism host-plane: <reason>` waivers — the
	// documented pattern for non-deterministic code inside a core package
	// (DESIGN.md §11).
	"amrtools/internal/metrics",
	// The storage and query layer is core: the same file queried twice (or
	// on two machines) must return bit-identical tables, and the v2 footer
	// index must encode identically for identical input.
	"amrtools/internal/colfile",
	"amrtools/internal/tql",
}

// wallClockFuncs are the time-package functions that read or depend on the
// wall clock (or the scheduler's notion of real time).
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// envFuncs are the os-package ambient-configuration reads.
var envFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
}

// Determinism flags wall-clock reads (time.Now/Since/…), math/rand usage,
// os environment lookups, and goroutine spawns in the deterministic core —
// and, since the rule went interprocedural, in every module function the
// core can reach: a time.Now in a "utility" package is just as
// schedule-visible when the core calls it, so findings outside the core
// carry a call-path witness from the core function that reaches them.
// Randomness must come from internal/xrand (seeded, stream-split);
// simulated time from the DES engine's virtual clock; configuration from
// Config structs; concurrency from the audited fork-join helpers already in
// place. Telemetry-only wall-clock reads are waivable with a reason.
//
// Runtime counterpart: the j1-vs-jN table-identity tests and the
// differential campaign (internal/check) — they detect the divergence these
// constructs cause, this rule names the construct before a campaign has to.
type Determinism struct {
	// Core is the set of import paths forming the deterministic core.
	Core []string
}

// NewDeterminism returns the determinism analyzer over the given core
// package set (DefaultCorePackages when nil).
func NewDeterminism(core []string) *Determinism {
	if core == nil {
		core = DefaultCorePackages
	}
	return &Determinism{Core: core}
}

func (d *Determinism) Name() string { return "determinism" }
func (d *Determinism) Doc() string {
	return "forbid wall-clock, math/rand, env lookups, and goroutine spawns in (and reachable from) the deterministic core"
}

func (d *Determinism) coreSet() map[string]bool {
	out := map[string]bool{}
	for _, p := range d.Core {
		out[p] = true
	}
	return out
}

// Run applies the in-core checks to one package — kept for standalone
// per-package use; under lint.Run the analyzer runs once as a
// ModuleAnalyzer instead.
func (d *Determinism) Run(pass *Pass) {
	if !d.coreSet()[pass.Pkg.Path] {
		return
	}
	d.checkCorePkg(pass.Pkg, func(pos token.Pos, fix, format string, args ...interface{}) {
		pass.Reportf(pos, d.Name(), fix, format, args...)
	})
}

// RunModule applies the in-core checks to every core package, then walks
// the call graph outward: any non-core module function reachable from core
// code — by direct call, sealed-interface dispatch, or function-value
// reference — is held to the same standard, with a call-path witness.
func (d *Determinism) RunModule(mp *ModulePass) {
	core := d.coreSet()
	for _, pkg := range mp.Set.All {
		if !core[pkg.Path] {
			continue
		}
		d.checkCorePkg(pkg, func(pos token.Pos, fix, format string, args ...interface{}) {
			mp.Reportf(pos, d.Name(), fix, nil, format, args...)
		})
	}
	var roots []*FuncNode
	for _, n := range mp.Graph.Nodes {
		if core[n.Pkg.Path] {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return
	}
	reach := mp.Graph.Reachable(roots, EdgeCall|EdgeIface|EdgeRef, nil)
	for _, n := range mp.Graph.Nodes {
		if core[n.Pkg.Path] || !reach.Has(n) {
			continue
		}
		d.checkReachedNode(mp, n, reach)
	}
}

// checkCorePkg applies the syntactic in-core checks to one core package.
func (d *Determinism) checkCorePkg(pkg *Package, report func(pos token.Pos, fix, format string, args ...interface{})) {
	for _, f := range pkg.Files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				report(spec.Pos(),
					"use internal/xrand (seeded, stream-splittable)",
					"import of %s in deterministic core package %s", path, pkg.Path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				report(n.Pos(),
					"use a deterministic fork-join (fixed partition, WaitGroup, disjoint writes) and waive it with the invariant it preserves",
					"goroutine spawn in deterministic core package %s", pkg.Path)
			case *ast.SelectorExpr:
				// Flagging the selector rather than a call catches stored
				// references (fn := time.Now) as well as direct calls.
				pkgName, fun := pkgSelector(pkg, n)
				switch {
				case pkgName == "time" && wallClockFuncs[fun]:
					report(n.Pos(),
						"derive times from the DES virtual clock or replace the wall-clock dependence with a deterministic budget",
						"wall-clock call time.%s in deterministic core package %s", fun, pkg.Path)
				case pkgName == "os" && envFuncs[fun]:
					report(n.Pos(),
						"thread configuration through the package's Config struct",
						"environment lookup os.%s in deterministic core package %s", fun, pkg.Path)
				}
			}
			return true
		})
	}
}

// checkReachedNode applies the determinism checks to the own body of a
// non-core function the core reaches.
func (d *Determinism) checkReachedNode(mp *ModulePass, n *FuncNode, reach *Reach) {
	path := reach.Path(n)
	walkOwn(n.Body(), func(node ast.Node) {
		switch node := node.(type) {
		case *ast.GoStmt:
			mp.Reportf(node.Pos(), d.Name(),
				"restructure so the core does not reach this spawn, or waive it with the invariant that keeps it schedule-invisible",
				path, "goroutine spawn in %s, reachable from the deterministic core", n.Name)
		case *ast.SelectorExpr:
			pkgName, fun := pkgSelector(n.Pkg, node)
			switch {
			case pkgName == "time" && wallClockFuncs[fun]:
				mp.Reportf(node.Pos(), d.Name(),
					"derive times from the DES virtual clock or hoist the wall-clock read out of core-reachable code",
					path, "wall-clock call time.%s in %s, reachable from the deterministic core", fun, n.Name)
			case pkgName == "os" && envFuncs[fun]:
				mp.Reportf(node.Pos(), d.Name(),
					"thread configuration through a Config struct instead of reading the environment",
					path, "environment lookup os.%s in %s, reachable from the deterministic core", fun, n.Name)
			case (pkgName == "math/rand" || pkgName == "math/rand/v2") && fun != "":
				mp.Reportf(node.Pos(), d.Name(),
					"use internal/xrand (seeded, stream-splittable)",
					path, "math/rand use rand.%s in %s, reachable from the deterministic core", fun, n.Name)
			}
		}
	})
}

// pkgSelector resolves a selector of the form pkg.Fun where pkg is an
// imported package name, returning the package path and function name
// ("" when the selector has another shape, e.g. a method on a value).
func pkgSelector(pkg *Package, sel *ast.SelectorExpr) (pkgPath, fun string) {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
