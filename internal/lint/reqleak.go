package lint

import (
	"go/ast"
	"go/types"
)

// ReqLeak flags Isend/Irecv results that can never reach a Wait: a
// *Request discarded on the floor, assigned to the blank identifier, or
// parked in a local (or accumulated into a local slice) that the function
// never touches again. A request that escapes — returned, stored into a
// struct, or passed to any call — is assumed handled.
//
// Runtime counterpart: the freed-marker panic in mpi (double Wait) and
// AuditTeardown's send-completion check, which catch leaks only on runs
// where the leaked request's message actually mattered; this rule catches
// the shape on every build.
type ReqLeak struct{}

func (ReqLeak) Name() string { return "reqleak" }
func (ReqLeak) Doc() string {
	return "every Isend/Irecv *Request must reach a Wait/WaitAll or escape the function"
}

func (ReqLeak) Run(pass *Pass) {
	mustConsume(pass, "reqleak",
		"Wait on the request (or WaitAll on the slice collecting it)",
		isRequestProducer, "Isend/Irecv request")
}

// isRequestProducer matches method calls named Isend or Irecv returning a
// pointer to a type named Request. Matching by name and result shape keeps
// the rule applicable to the fixture packages as well as internal/mpi.
func isRequestProducer(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Isend" && sel.Sel.Name != "Irecv") {
		return false
	}
	t := pass.TypeOf(call)
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Request"
}
