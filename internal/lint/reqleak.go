package lint

import (
	"go/ast"
	"go/types"
)

// ReqLeak flags Isend/Irecv results that can never reach a Wait: a
// *Request discarded on the floor, assigned to the blank identifier, or
// parked in a local (or accumulated into a local slice) that the function
// never touches again.
//
// Since the rule went interprocedural, "passed to a call" is no longer
// automatic consumption: passing a request to a module-internal helper only
// discharges the Wait obligation when the helper's summary says the
// corresponding parameter is handled — waited on, used, escaped, or
// forwarded (transitively) to a function that handles it. A helper that
// takes the request and drops it, or a mutually-recursive pair that only
// pass it back and forth, no longer launders the leak. Calls that cannot be
// resolved to module functions are still assumed to consume.
//
// Runtime counterpart: the freed-marker panic in mpi (double Wait) and
// AuditTeardown's send-completion check, which catch leaks only on runs
// where the leaked request's message actually mattered; this rule catches
// the shape on every build.
type ReqLeak struct{}

func (ReqLeak) Name() string { return "reqleak" }
func (ReqLeak) Doc() string {
	return "every Isend/Irecv *Request must reach a Wait/WaitAll, directly or through a handling helper"
}

const reqLeakFix = "Wait on the request (or WaitAll on the slice collecting it)"

// Run applies the rule to one package without summaries (every call
// consumes) — kept for standalone per-package use; under lint.Run the
// analyzer runs once as a ModuleAnalyzer instead.
func (ReqLeak) Run(pass *Pass) {
	mustConsume(pass, "reqleak", reqLeakFix, isRequestProducer, "Isend/Irecv request")
}

// RunModule applies the rule to every package, consulting the request-
// parameter summaries to decide whether passing a request to a module
// helper consumes it.
func (ReqLeak) RunModule(mp *ModulePass) {
	consumes := func(pass *Pass, call *ast.CallExpr, argIdx int) bool {
		callee := staticCallee(mp.Graph, pass.Pkg, call)
		if callee == nil {
			return true // dynamic, interface, or non-module call: assume handled
		}
		handled, ok := mp.Sums.calleeParamHandled(callee, call, argIdx)
		if !ok {
			return true // not a request-shaped parameter slot: out of scope
		}
		return handled
	}
	for _, pkg := range mp.Set.All {
		pass := &Pass{Pkg: pkg, Module: mp.Set.All, diags: mp.diags}
		mustConsumeVia(pass, "reqleak", reqLeakFix, isRequestProducer,
			"Isend/Irecv request", consumes)
	}
}

// isRequestProducer matches method calls named Isend or Irecv returning a
// pointer to a type named Request. Matching by name and result shape keeps
// the rule applicable to the fixture packages as well as internal/mpi.
func isRequestProducer(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Isend" && sel.Sel.Name != "Irecv") {
		return false
	}
	t := pass.TypeOf(call)
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Request"
}
