package lint

import (
	"testing"
	"time"
)

// perPkgOnly hides an analyzer's RunModule method so it runs in its legacy
// per-package mode: the method set of the embedded interface value is just
// Name/Doc/Run, so the ModuleAnalyzer assertion in Run fails.
type perPkgOnly struct{ Analyzer }

// pr5Analyzers is the original per-package rule set, the budget baseline.
func pr5Analyzers() []Analyzer {
	return []Analyzer{
		perPkgOnly{NewDeterminism(nil)},
		MapOrder{},
		perPkgOnly{ReqLeak{}},
		SpanPair{},
		Exhaustive{},
	}
}

// TestInterproceduralBudget pins the lint wall-clock budget: the full set —
// call graph, summaries, and all nine rules — must cost at most 2x the
// original five per-package rules on the real module (with a small absolute
// floor so machine noise on a fast baseline cannot flake the suite).
// Loading/type-checking is excluded: it is identical for both sets.
func TestInterproceduralBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	set, err := LoadSet(LoadConfig{Dir: "../.."})
	if err != nil {
		t.Fatal(err)
	}
	bestOf := func(analyzers []Analyzer) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			Run(set, analyzers)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	base := bestOf(pr5Analyzers())
	full := bestOf(Analyzers())
	budget := 2 * base
	if floor := 250 * time.Millisecond; budget < floor {
		budget = floor
	}
	t.Logf("per-package baseline %v, full interprocedural set %v (budget %v)", base, full, budget)
	if full > budget {
		t.Fatalf("interprocedural lint %v exceeds budget %v (baseline %v)", full, budget, base)
	}
}
