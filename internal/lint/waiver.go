package lint

import (
	"sort"
	"strings"
)

// A waiver is one //lint:ignore <rule> <reason> comment. It suppresses
// diagnostics of the named rule on the line it trails, or — when it stands
// alone on its own line — on the next line. Every waiver must carry a
// non-empty reason, and a waiver that suppresses nothing is itself reported
// (rule "waiver"), so removing the offending code without removing its
// waiver still fails the build.
type waiver struct {
	file   string
	line   int // line of the comment itself
	rule   string
	reason string
	used   bool
}

// WaiverRule is the rule id under which malformed and unused waivers are
// reported. It is not waivable: a waiver comment cannot excuse another
// waiver comment.
const WaiverRule = "waiver"

// waiverSet indexes waivers by file.
type waiverSet struct {
	byFile map[string][]*waiver
	broken []Diagnostic // malformed //lint:ignore comments
}

// collectWaivers scans every file's comments for //lint:ignore directives.
func collectWaivers(pkgs []*Package) *waiverSet {
	ws := &waiverSet{byFile: map[string][]*waiver{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						ws.broken = append(ws.broken, Diagnostic{
							File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Rule:    WaiverRule,
							Message: "malformed waiver: want //lint:ignore <rule> <reason>",
							Fix:     "state the rule id and a one-line reason",
						})
						continue
					}
					ws.add(&waiver{
						file:   pos.Filename,
						line:   pos.Line,
						rule:   fields[0],
						reason: strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}
	return ws
}

func (ws *waiverSet) add(w *waiver) {
	ws.byFile[w.file] = append(ws.byFile[w.file], w)
}

// covers reports whether w suppresses a diagnostic of the given rule at
// file:line.
func (w *waiver) covers(rule, file string, line int) bool {
	if w.rule != rule || w.file != file {
		return false
	}
	// A waiver covers its own line (trailing form) and the following line
	// (standalone form). Covering both keeps the directive usable without
	// the scanner having to know which form it is.
	return line == w.line || line == w.line+1
}

// filter drops waived diagnostics, marking the waivers that fired.
func (ws *waiverSet) filter(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Rule == WaiverRule {
			out = append(out, d)
			continue
		}
		waived := false
		for _, w := range ws.byFile[d.File] {
			if w.covers(d.Rule, d.File, d.Line) {
				w.used = true
				waived = true
			}
		}
		if !waived {
			out = append(out, d)
		}
	}
	return out
}

// unusedIn reports every waiver in the selected file set that suppressed
// nothing, plus malformed ones. Waivers outside the selection are left
// alone: their diagnostics were filtered out with their packages, so "no
// diagnostic suppressed" would be an artifact of the pattern, not a fact
// about the code.
func (ws *waiverSet) unusedIn(selected map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range ws.broken {
		if selected[d.File] {
			out = append(out, d)
		}
	}
	files := make([]string, 0, len(ws.byFile))
	for f := range ws.byFile {
		if selected[f] {
			files = append(files, f)
		}
	}
	sort.Strings(files)
	for _, f := range files {
		for _, w := range ws.byFile[f] {
			if !w.used {
				out = append(out, Diagnostic{
					File: w.file, Line: w.line, Col: 1,
					Rule:    WaiverRule,
					Message: "unused waiver for rule " + w.rule + ": no diagnostic suppressed",
					Fix:     "delete the //lint:ignore comment",
				})
			}
		}
	}
	return out
}
