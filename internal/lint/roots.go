package lint

import (
	"go/ast"
	"go/types"
)

// Context-root discovery for the interprocedural rules. A "root" is a
// function the analysis treats as the entry point of an execution context:
//
//	window-phase roots — function values handed to the DES engine's entry
//	    points (Spawn/At/After/InjectAt/OnMerge). Everything they reach runs
//	    inside a simulated window, where shards execute concurrently and
//	    only laned or shard-owned state may be mutated.
//	worker roots — functions installed as a harness Spec's Run field: the
//	    body each harness worker goroutine executes, one whole experiment
//	    per call, concurrently across workers.
//	host-plane roots — goroutine bodies spawned outside the deterministic
//	    core plus HTTP-handler-shaped functions: the wall-clock side of the
//	    two-plane design (DESIGN.md §11).
//	hot-path roots — functions annotated //amr:hotpath; //amr:cold prunes
//	    the traversal below a node.
//
// Roots are matched by shape (method name, field name, signature), not by
// import path, so the fixture module can exercise every rule without
// importing the real sim/mpi/harness packages.

// windowPhaseMethods are the DES entry points whose function-typed
// arguments run inside the simulated window phase.
var windowPhaseMethods = map[string]bool{
	"Spawn": true, "At": true, "After": true, "InjectAt": true, "OnMerge": true,
}

// funcValueNodes resolves an expression used as a function value to its
// graph nodes: a literal, a named function/method value, or nil when the
// expression is dynamic.
func funcValueNodes(g *Graph, pkg *Package, e ast.Expr) []*FuncNode {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		if n := g.byLit[e]; n != nil {
			return []*FuncNode{n}
		}
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[e].(*types.Func); ok {
			if n := g.NodeOf(obj); n != nil {
				return []*FuncNode{n}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok {
			if obj, ok := sel.Obj().(*types.Func); ok {
				if n := g.NodeOf(obj); n != nil {
					return []*FuncNode{n}
				}
			}
			return nil
		}
		if obj, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			if n := g.NodeOf(obj); n != nil {
				return []*FuncNode{n}
			}
		}
	}
	return nil
}

// WindowRoots returns every function value passed to a window-phase entry
// point (a method call named Spawn/At/After/InjectAt/OnMerge), in
// deterministic node order. The scan is memoized on the graph: several
// rules need it and it walks every function body.
func WindowRoots(g *Graph) []*FuncNode {
	if g.windowRootsOnce {
		return g.windowRoots
	}
	var out []*FuncNode
	seen := map[*FuncNode]bool{}
	for _, n := range g.Nodes {
		walkOwn(n.Body(), func(node ast.Node) {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return
			}
			fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !windowPhaseMethods[fun.Sel.Name] {
				return
			}
			if _, isMethod := n.Pkg.Info.Selections[fun]; !isMethod {
				return
			}
			for _, arg := range call.Args {
				if !isFuncTyped(n.Pkg, arg) {
					continue
				}
				for _, root := range funcValueNodes(g, n.Pkg, arg) {
					if !seen[root] {
						seen[root] = true
						out = append(out, root)
					}
				}
			}
		})
	}
	g.windowRoots, g.windowRootsOnce = out, true
	return out
}

// WorkerRoots returns every function value installed as the Run field of a
// composite literal of a type named Spec — the harness worker bodies. Like
// WindowRoots, the scan is memoized on the graph.
func WorkerRoots(g *Graph) []*FuncNode {
	if g.workerRootsOnce {
		return g.workerRoots
	}
	var out []*FuncNode
	seen := map[*FuncNode]bool{}
	for _, n := range g.Nodes {
		walkOwn(n.Body(), func(node ast.Node) {
			lit, ok := node.(*ast.CompositeLit)
			if !ok || !isSpecType(n.Pkg, lit) {
				return
			}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || key.Name != "Run" {
					continue
				}
				for _, root := range funcValueNodes(g, n.Pkg, kv.Value) {
					if !seen[root] {
						seen[root] = true
						out = append(out, root)
					}
				}
			}
		})
	}
	g.workerRoots, g.workerRootsOnce = out, true
	return out
}

// isSpecType reports whether a composite literal's type is a (possibly
// generic, possibly pointered) named type called Spec.
func isSpecType(pkg *Package, lit *ast.CompositeLit) bool {
	t := pkg.Info.TypeOf(lit)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Spec"
}

// HostRoots returns the host-plane entry points: goroutine bodies spawned
// in packages outside the deterministic core (goroutines inside the core
// are the DES machinery itself, waived under the determinism rule and
// governed by the shard-ownership protocol), plus HTTP-handler-shaped
// functions anywhere.
func HostRoots(g *Graph, core []string) []*FuncNode {
	coreSet := map[string]bool{}
	for _, p := range core {
		coreSet[p] = true
	}
	var out []*FuncNode
	seen := map[*FuncNode]bool{}
	add := func(root *FuncNode) {
		if root != nil && !seen[root] {
			seen[root] = true
			out = append(out, root)
		}
	}
	for _, n := range g.Nodes {
		if isHandlerShaped(n) {
			add(n)
		}
		if coreSet[n.Pkg.Path] {
			continue
		}
		walkOwn(n.Body(), func(node ast.Node) {
			gs, ok := node.(*ast.GoStmt)
			if !ok {
				return
			}
			for _, root := range funcValueNodes(g, n.Pkg, gs.Call.Fun) {
				add(root)
			}
		})
	}
	return out
}

// isHandlerShaped reports whether a declared function has the
// http.HandlerFunc signature (w http.ResponseWriter, r *http.Request).
func isHandlerShaped(n *FuncNode) bool {
	if n.Obj == nil {
		return false
	}
	sig, ok := n.Obj.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 2 {
		return false
	}
	return isNetHTTPNamed(sig.Params().At(0).Type(), "ResponseWriter") &&
		isNetHTTPNamed(derefType(sig.Params().At(1).Type()), "Request")
}

func derefType(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

func isNetHTTPNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == name
}

// HotRoots returns every node annotated //amr:hotpath.
func HotRoots(g *Graph) []*FuncNode {
	var out []*FuncNode
	for _, n := range g.Nodes {
		if n.Hot {
			out = append(out, n)
		}
	}
	return out
}

// isFuncTyped reports whether an expression's static type is a function
// type.
func isFuncTyped(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}
