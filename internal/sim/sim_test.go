package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(2, func() { order = append(order, 2) })
	e.At(1, func() { order = append(order, 1) })
	e.At(3, func() { order = append(order, 3) })
	end := e.Run()
	if end != 3 {
		t.Fatalf("end time = %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("past scheduling did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestAfterAndNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.After(1, func() {
		times = append(times, e.Now())
		e.After(2, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v", times)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1, func() { fired++ })
	e.At(5, func() { fired++ })
	e.RunUntil(3)
	if fired != 1 || e.Now() != 3 {
		t.Fatalf("fired=%d now=%v", fired, e.Now())
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired=%d after full run", fired)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wake []Time
	e.Spawn("a", func(p *Proc) {
		p.Sleep(1)
		wake = append(wake, p.Now())
		p.Sleep(2)
		wake = append(wake, p.Now())
	})
	e.Run()
	if len(wake) != 2 || wake[0] != 1 || wake[1] != 3 {
		t.Fatalf("wake = %v", wake)
	}
}

func TestProcInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(1)
					log = append(log, name)
				}
			})
		}
		e.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		if got := run(); len(got) != len(first) {
			t.Fatal("length mismatch")
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("non-deterministic interleaving: %v vs %v", got, first)
				}
			}
		}
	}
	// Same sleep times: spawn order must decide.
	if first[0] != "a" || first[1] != "b" || first[2] != "c" {
		t.Fatalf("tie-break order = %v", first)
	}
}

func TestFutureAwait(t *testing.T) {
	e := NewEngine()
	f := NewFuture()
	var got Time = -1
	e.Spawn("waiter", func(p *Proc) {
		p.Await(f)
		got = p.Now()
	})
	e.At(7, func() { f.Complete(e) })
	e.Run()
	if got != 7 {
		t.Fatalf("waiter resumed at %v, want 7", got)
	}
	if !f.Done() {
		t.Fatal("future not done")
	}
}

func TestAwaitCompletedFutureIsImmediate(t *testing.T) {
	e := NewEngine()
	f := NewFuture()
	f.Complete(e)
	var got Time = -1
	e.Spawn("waiter", func(p *Proc) {
		p.Await(f) // must not block
		got = p.Now()
	})
	e.Run()
	if got != 0 {
		t.Fatalf("resumed at %v, want 0", got)
	}
}

func TestAwaitAll(t *testing.T) {
	e := NewEngine()
	fs := []*Future{NewFuture(), NewFuture(), NewFuture()}
	var got Time = -1
	e.Spawn("w", func(p *Proc) {
		p.AwaitAll(fs)
		got = p.Now()
	})
	e.At(1, func() { fs[1].Complete(e) })
	e.At(2, func() { fs[0].Complete(e) })
	e.At(5, func() { fs[2].Complete(e) })
	e.Run()
	if got != 5 {
		t.Fatalf("AwaitAll resumed at %v, want 5", got)
	}
}

func TestDoubleCompletePanics(t *testing.T) {
	e := NewEngine()
	f := NewFuture()
	f.Complete(e)
	defer func() {
		if recover() == nil {
			t.Fatal("double complete did not panic")
		}
	}()
	f.Complete(e)
}

func TestMultipleWaiterWakeOrder(t *testing.T) {
	e := NewEngine()
	f := NewFuture()
	var order []string
	for _, n := range []string{"x", "y", "z"} {
		n := n
		e.Spawn(n, func(p *Proc) {
			p.Await(f)
			order = append(order, n)
		})
	}
	e.At(1, func() { f.Complete(e) })
	e.Run()
	if len(order) != 3 || order[0] != "x" || order[1] != "y" || order[2] != "z" {
		t.Fatalf("wake order = %v", order)
	}
}

func TestBlockedDetection(t *testing.T) {
	e := NewEngine()
	f := NewFuture() // never completed
	e.Spawn("stuck", func(p *Proc) { p.Await(f) })
	e.Spawn("fine", func(p *Proc) { p.Sleep(1) })
	e.Run()
	blocked := e.Blocked()
	if len(blocked) != 1 || blocked[0].Name() != "stuck" {
		t.Fatalf("blocked = %v", blocked)
	}
	e.Close() // release the stuck goroutine
	if len(e.Blocked()) != 0 {
		t.Fatal("Close left blocked procs")
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	e := NewEngine()
	panicked := false
	e.Spawn("bad", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
				panic(killedError{"bad"}) // unwind cleanly through wrapper
			}
		}()
		p.Sleep(-1)
	})
	e.Run()
	if !panicked {
		t.Fatal("negative sleep did not panic")
	}
}

func TestProcChains(t *testing.T) {
	// A pipeline of processes passing a token via futures: total time must
	// be the sum of stage delays.
	e := NewEngine()
	const stages = 10
	futs := make([]*Future, stages+1)
	for i := range futs {
		futs[i] = NewFuture()
	}
	for i := 0; i < stages; i++ {
		i := i
		e.Spawn("stage", func(p *Proc) {
			p.Await(futs[i])
			p.Sleep(1.5)
			futs[i+1].Complete(e)
		})
	}
	e.At(0, func() { futs[0].Complete(e) })
	var end Time
	e.Spawn("sink", func(p *Proc) {
		p.Await(futs[stages])
		end = p.Now()
	})
	e.Run()
	if end != 15 {
		t.Fatalf("pipeline end = %v, want 15", end)
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	var step func()
	n := 0
	step = func() {
		n++
		if n < b.N {
			e.After(1, step)
		}
	}
	e.After(1, step)
	b.ResetTimer()
	e.Run()
}

func BenchmarkProcSwitch(b *testing.B) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	e.Run()
}

// TestProcPanicPropagatesToEngineCaller pins the panic-forwarding contract:
// a panic inside a process body must surface from Engine.Run in the caller's
// goroutine (where tests and the campaign harness can recover it), carrying
// the original panic value, instead of crashing the process from the
// unrecoverable proc goroutine.
func TestProcPanicPropagatesToEngineCaller(t *testing.T) {
	e := NewEngine()
	e.Spawn("healthy", func(p *Proc) { p.Sleep(5) })
	e.Spawn("buggy", func(p *Proc) {
		p.Sleep(1)
		panic("rank bug")
	})
	var recovered interface{}
	func() {
		defer func() { recovered = recover() }()
		e.Run()
		t.Error("Run returned instead of panicking")
	}()
	if recovered != "rank bug" {
		t.Fatalf("recovered %v, want the original panic value", recovered)
	}
}

// TestProcPanicAtStartPropagates covers the panic-before-first-block path.
func TestProcPanicAtStartPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("instant", func(p *Proc) { panic(42) })
	var recovered interface{}
	func() {
		defer func() { recovered = recover() }()
		e.Run()
	}()
	if recovered != 42 {
		t.Fatalf("recovered %v, want 42", recovered)
	}
}
