package sim

import "testing"

// The engine is the hot path of every experiment (millions of events per
// run), so this file locks in the zero-allocation scheduling contract with
// testing.AllocsPerRun: once the event arena and heap have grown to the
// workload's high-water mark (AllocsPerRun's warm-up run does that), event
// push/pop and process switching must not allocate. A regression here
// multiplies by the ~2 events per simulated message of every campaign.

// TestEventPushPopAllocFree: scheduling and draining typed fn events must
// be allocation-free in steady state.
func TestEventPushPopAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	const batch = 1024
	per := testing.AllocsPerRun(10, func() {
		now := e.Now()
		for i := 0; i < batch; i++ {
			e.At(now+float64(i%13), fn)
		}
		for e.Step() {
		}
	})
	if per > 0 {
		t.Errorf("event push/pop allocates %.1f objects per %d-event batch, want 0", per, batch)
	}
}

// TestTypedMessageEventsAllocFree: the CompleteAt / DeliverAt fast paths
// (one each per simulated message) must be allocation-free in steady state.
func TestTypedMessageEventsAllocFree(t *testing.T) {
	e := NewEngine()
	e.SetSink(nopSink{})
	f := NewFuture()
	const batch = 512
	per := testing.AllocsPerRun(10, func() {
		now := e.Now()
		for i := 0; i < batch; i++ {
			e.DeliverAt(now+float64(i%7), 0, 1, int32(i), 64, true)
		}
		f.Reset()
		e.CompleteAt(now+100, f)
		for e.Step() {
		}
	})
	if per > 0 {
		t.Errorf("typed message events allocate %.1f objects per %d-event batch, want 0", per, batch)
	}
}

type nopSink struct{}

func (nopSink) DeliverMsg(src, dst, tag int32, bytes int64, local bool) {}

// TestProcSwitchAllocFree: a process sleep/resume cycle (two coroutine
// handoffs plus one heap event) must not allocate. Spawn itself allocates
// (proc struct, goroutine, channel), so the cost is amortized over many
// switches and the budget is a small fraction per switch.
func TestProcSwitchAllocFree(t *testing.T) {
	e := NewEngine()
	const switches = 2048
	per := testing.AllocsPerRun(5, func() {
		e.Spawn("s", func(p *Proc) {
			for i := 0; i < switches; i++ {
				p.Sleep(1)
			}
		})
		e.Run()
	}) / switches
	if per > 0.02 {
		t.Errorf("proc switch allocates %.4f objects per switch, want ~0 (spawn overhead only)", per)
	}
}
