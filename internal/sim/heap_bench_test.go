package sim

import (
	"container/heap"
	"testing"
)

// boxedHeap is the previous container/heap-based implementation, kept here
// so the benchmark pair below documents what the typed heap buys: Push/Pop
// through interface{} box every event onto the Go heap, which on the
// hottest path of every run is one allocation per scheduled event.
type boxedHeap []event

func (h boxedHeap) Len() int { return len(h) }
func (h boxedHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h boxedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *boxedHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *boxedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// heapWorkload mimics the engine's schedule shape: a standing pool of
// pending events with interleaved pushes and pops at slightly jittered
// times.
const heapPool = 1024

func BenchmarkEventHeapTyped(b *testing.B) {
	b.ReportAllocs()
	var h eventHeap
	for i := 0; i < heapPool; i++ {
		h.push(event{t: float64(i % 7), seq: int64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := h.pop()
		ev.t += 1
		ev.seq = int64(heapPool + i)
		h.push(ev)
	}
}

func BenchmarkEventHeapBoxed(b *testing.B) {
	b.ReportAllocs()
	var h boxedHeap
	for i := 0; i < heapPool; i++ {
		heap.Push(&h, event{t: float64(i % 7), seq: int64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := heap.Pop(&h).(event)
		ev.t += 1
		ev.seq = int64(heapPool + i)
		heap.Push(&h, ev)
	}
}

// TestEventHeapOrdering replays a scrambled schedule through the typed heap
// and asserts (t, seq) order — the engine's determinism contract.
func TestEventHeapOrdering(t *testing.T) {
	var h eventHeap
	// Deliberately adversarial: decreasing times, duplicate times, and
	// out-of-order sequences.
	times := []float64{5, 3, 3, 9, 0, 3, 5, 1, 0, 7}
	for i, tv := range times {
		h.push(event{t: tv, seq: int64(i)})
	}
	var prev event
	for i := 0; len(h) > 0; i++ {
		ev := h.pop()
		if i > 0 {
			if ev.t < prev.t || (ev.t == prev.t && ev.seq < prev.seq) {
				t.Fatalf("pop %d out of order: (%v,%d) after (%v,%d)",
					i, ev.t, ev.seq, prev.t, prev.seq)
			}
		}
		prev = ev
	}
}
