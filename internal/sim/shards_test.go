package sim

import (
	"math"
	"testing"

	"amrtools/internal/check"
)

// recordingSink captures delivery order on one engine.
type recordingSink struct {
	got [][3]int32 // (src, dst, tag) in execution order
}

func (s *recordingSink) DeliverMsg(src, dst, tag int32, bytes int64, local bool) {
	s.got = append(s.got, [3]int32{src, dst, tag})
}

func TestShardsRunSleepers(t *testing.T) {
	s := NewShards(3, 1e-6)
	for i := 0; i < 3; i++ {
		d := float64(i+1) * 1e-3
		s.Engine(i).Spawn("p", func(p *Proc) {
			for k := 0; k < 4; k++ {
				p.Sleep(d)
			}
		})
	}
	end := s.Run()
	if want := 4 * 3e-3; math.Abs(end-want) > 1e-12 {
		t.Fatalf("makespan %v, want %v", end, want)
	}
	// 4 sleep-resume events per proc plus the spawn start event.
	if ev := s.Events(); ev != 3*5 {
		t.Fatalf("events = %d, want 15", ev)
	}
	if len(s.Blocked()) != 0 {
		t.Fatalf("blocked procs after drain")
	}
	s.Close()
}

func TestShardsWorkerPoolMatchesInline(t *testing.T) {
	run := func(minParallel int) (Time, int64) {
		s := NewShards(4, 1e-6)
		s.SetMinParallel(minParallel)
		for i := 0; i < 4; i++ {
			i := i
			s.Engine(i).Spawn("p", func(p *Proc) {
				for k := 0; k < 50; k++ {
					p.Sleep(1e-5 + float64(i)*1e-9)
				}
			})
		}
		defer s.Close()
		return s.Run(), s.Events()
	}
	// minParallel 1 forces every window through the worker pool; a huge
	// threshold keeps everything inline on the coordinator.
	inlineEnd, inlineEv := run(1 << 20)
	poolEnd, poolEv := run(1)
	if inlineEnd != poolEnd || inlineEv != poolEv {
		t.Fatalf("worker pool changed results: (%v, %d) vs (%v, %d)",
			poolEnd, poolEv, inlineEnd, inlineEv)
	}
}

// TestMergeStagedOrder: staged deliveries must inject in (t, src, seq) order
// regardless of the order shards staged them, fixing the destination heap's
// tie-break sequence for any shard count.
func TestMergeStagedOrder(t *testing.T) {
	s := NewShards(2, 1e-3)
	sink := &recordingSink{}
	for _, e := range s.Engines() {
		e.SetSink(sink)
	}
	// Stage out of order: same time from both shards, differing src/seq.
	s.StageDelivery(1, 0, 5e-3, 7, 0, 3, 10, 1)
	s.StageDelivery(1, 0, 5e-3, 7, 0, 4, 10, 0)
	s.StageDelivery(0, 0, 5e-3, 2, 0, 1, 10, 0)
	s.StageDelivery(0, 0, 2e-3, 9, 0, 2, 10, 0)
	s.Run()
	want := [][3]int32{{9, 0, 2}, {2, 0, 1}, {7, 0, 4}, {7, 0, 3}}
	if len(sink.got) != len(want) {
		t.Fatalf("delivered %d messages, want %d", len(sink.got), len(want))
	}
	for i := range want {
		if sink.got[i] != want[i] {
			t.Fatalf("delivery %d = %v, want %v (full order %v)", i, sink.got[i], want[i], sink.got)
		}
	}
}

// TestInjectBeforeHorizonViolation: coordinator work landing before the
// merged horizon would rewrite executed history; the always-on audit must
// raise a structured window-safety violation.
func TestInjectBeforeHorizonViolation(t *testing.T) {
	s := NewShards(2, 1e-6)
	s.horizon = 5e-3
	v, ok := check.Catch(func() { s.InjectAt(0, 1e-3, func() {}) })
	if !ok {
		t.Fatal("late injection did not panic with a violation")
	}
	if v.Layer != "sim" || v.Invariant != "window-safety" {
		t.Fatalf("violation = %s/%s, want sim/window-safety", v.Layer, v.Invariant)
	}
}

// TestStageWithinLookaheadViolation: a cross-shard delivery closer than the
// lookahead to its source clock breaks the conservative guarantee; the
// paranoid stage-time audit must catch the injection at the source.
func TestStageWithinLookaheadViolation(t *testing.T) {
	s := NewShards(2, 1e-3)
	s.SetParanoid(true)
	v, ok := check.Catch(func() {
		s.StageDelivery(0, 1, 1e-6, 0, 1, 0, 10, 0) // t << lookahead
	})
	if !ok {
		t.Fatal("within-lookahead staging did not panic with a violation")
	}
	if v.Layer != "sim" || v.Invariant != "window-safety" {
		t.Fatalf("violation = %s/%s, want sim/window-safety", v.Layer, v.Invariant)
	}
}

// TestMergedDeliveryBeforeHorizonViolation: the merge-time audit is the
// always-on backstop for deliveries staged in breach of the lookahead bound
// outside paranoid mode.
func TestMergedDeliveryBeforeHorizonViolation(t *testing.T) {
	s := NewShards(2, 1e-3)
	sink := &recordingSink{}
	for _, e := range s.Engines() {
		e.SetSink(sink)
	}
	s.horizon = 5e-3
	s.StageDelivery(0, 1, 1e-3, 0, 1, 0, 10, 0)
	v, ok := check.Catch(func() { s.mergeStaged() })
	if !ok {
		t.Fatal("pre-horizon merge did not panic with a violation")
	}
	if v.Layer != "sim" || v.Invariant != "window-safety" {
		t.Fatalf("violation = %s/%s, want sim/window-safety", v.Layer, v.Invariant)
	}
}

func TestShardsSilentEventAccounting(t *testing.T) {
	s := NewShards(2, 1e-6)
	fired := 0
	s.InjectAt(1, 1e-3, func() { fired++ })
	s.AddCoordinatorEvents(1)
	s.Run()
	if fired != 1 {
		t.Fatalf("silent injection fired %d times", fired)
	}
	// The silent event itself is uncounted; only the coordinator accounting
	// shows up, so Events is shard-count independent.
	if ev := s.Events(); ev != 1 {
		t.Fatalf("events = %d, want 1 (coordinator-accounted only)", ev)
	}
}

func TestShardsInterrupt(t *testing.T) {
	s := NewShards(2, 1e-6)
	s.Engine(0).Spawn("p", func(p *Proc) {
		for {
			p.Sleep(1e-3)
		}
	})
	s.SetInterrupt(func() bool { return true })
	defer func() {
		if r := recover(); r != error(ErrInterrupted) {
			t.Fatalf("recovered %v, want ErrInterrupted", r)
		}
		s.Close()
	}()
	s.Run()
	t.Fatal("interrupted Run returned")
}

// TestShardsBlockedAggregates: a proc stuck on a never-completed future must
// surface through Blocked after the scheduler drains.
func TestShardsBlockedAggregates(t *testing.T) {
	s := NewShards(2, 1e-6)
	var fut Future
	s.Engine(1).Spawn("stuck", func(p *Proc) { p.Await(&fut) })
	s.Run()
	blocked := s.Blocked()
	if len(blocked) != 1 || blocked[0].Name() != "stuck" {
		t.Fatalf("blocked = %v", blocked)
	}
	s.Close()
}

func TestNewShardsRejectsBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewShards(0, 1e-6) },
		func() { NewShards(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad NewShards args accepted")
				}
			}()
			fn()
		}()
	}
}
