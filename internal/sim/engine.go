// Package sim is a deterministic discrete-event simulation engine with a
// process (coroutine) model, the foundation of the simulated MPI cluster.
//
// The paper's placement effects are causal timing chains — a straggler rank
// delays a barrier, a late send stalls a remote wait — so the substitution
// for the real 600-node cluster is a virtual-time simulator that reproduces
// exactly those chains. Determinism is guaranteed by a (time, sequence)
// ordered event heap and by running exactly one process at a time: identical
// inputs replay identical schedules, which is what makes the telemetry
// experiments reproducible.
//
// Processes are goroutines that synchronize with the engine through a
// rendezvous channel: the engine resumes a process, the process runs until
// it blocks (Sleep, Await) or finishes, then hands control back. Only one
// goroutine is ever runnable, so process code needs no locking.
//
// The engine is also the hot path of every experiment (millions of events
// per run), so scheduling is allocation-free in steady state: events are
// typed payloads, not closures. The generic At/After closure form remains
// for cold paths; the per-message fast paths (future completion, message
// delivery) have dedicated typed variants so the MPI layer never allocates
// to schedule them.
package sim

import (
	"errors"
	"fmt"
)

// Time is virtual time in seconds.
type Time = float64

// ErrInterrupted is the panic value raised by Run (and Shards.Run) when the
// interrupt hook installed with SetInterrupt reports true. Callers that want
// to cancel a simulation (the campaign harness's timeout path) recover it,
// close the machine, and turn it into a run error; any other panic value
// still propagates.
var ErrInterrupted = errors.New("sim: run interrupted")

// evKind discriminates the payload variants of a scheduled event.
type evKind uint8

const (
	// evFn executes a closure inline (generic cold-path events).
	evFn evKind = iota
	// evProc resumes a blocked process.
	evProc
	// evFuture completes a Future at the scheduled time.
	evFuture
	// evMsg delivers a message payload to the engine's registered MsgSink.
	evMsg
	// evSilent executes a closure without counting it in Events(). The
	// sharded scheduler injects coordinator-originated work (collective
	// releases) with it and accounts the work once at the coordinator, so
	// Events() stays equal to the sequential engine's count for any shard
	// count.
	evSilent
)

// event is a heap entry: ordering key plus an index into the engine's body
// arena. Keeping entries at 24 bytes makes the sift operations — the
// hottest loop of every simulation — move 3 words per swap and pack three
// entries per cache line, while the payload (which sift never reads) stays
// put in its arena slot.
type event struct {
	t   Time
	seq int64
	idx int32 // index into Engine.bodies
}

// evBody is the payload of one scheduled event. Exactly one variant (fn,
// proc, fut, or the msg fields) is meaningful, selected by kind. Bodies
// live in an engine-owned arena recycled through a free list, so scheduling
// allocates only when the pending-event high-water mark grows.
type evBody struct {
	fn    func()
	proc  *Proc
	fut   *Future
	bytes int64
	src   int32
	dst   int32
	tag   int32
	kind  evKind
	local bool
}

// MsgSink receives typed message-delivery events scheduled with DeliverAt.
// The MPI world registers itself once per engine; the payload fields are
// exactly what its matching logic needs, so a delivery costs no closure.
type MsgSink interface {
	DeliverMsg(src, dst, tag int32, bytes int64, local bool)
}

// eventHeap is a binary min-heap ordered by (t, seq). It is the hottest
// data structure of every simulation, so instead of container/heap — whose
// interface{}-based Push/Pop box each event onto the Go heap and dispatch
// Less/Swap through an interface — the sift operations are inlined and
// typed: push/pop never allocate beyond slice growth.
type eventHeap []event

// less orders events by time, breaking ties by schedule sequence so
// same-time events replay in scheduling order (the determinism guarantee).
func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

// push appends ev and restores the heap by sifting it up.
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum event, sifting the root down.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	*h = q
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && q.less(right, left) {
			least = right
		}
		if !q.less(least, i) {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	return top
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine. Engines are not safe for concurrent use: in
// sharded runs each shard drives its own Engine, and the conservative-DES
// merge protocol is the only cross-shard access path.
//
//amr:shardowned
type Engine struct {
	now     Time
	seq     int64
	events  int64
	pq      eventHeap
	bodies  []evBody // payload arena, indexed by event.idx
	freeB   []int32  // free slots in bodies
	sink    MsgSink  // receiver of evMsg payloads (set once by the MPI world)
	procs   []*Proc  // all spawned processes, for Close
	running bool
	intr    func() bool // optional cancellation poll (see SetInterrupt)
}

// NewEngine returns an empty engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events executed so far — the DES work metric
// reported per run by the campaign harness.
func (e *Engine) Events() int64 { return e.events }

// SetSink registers the receiver of message-delivery events. At most one
// sink may be registered per engine (one MPI world per engine); registering
// a second distinct sink panics rather than silently misrouting deliveries.
func (e *Engine) SetSink(s MsgSink) {
	if e.sink != nil && e.sink != s {
		panic("sim: SetSink called twice with different sinks (one world per engine)")
	}
	e.sink = s
}

// schedule stores the body in a free arena slot and pushes its heap entry.
func (e *Engine) schedule(t Time, b evBody) {
	var idx int32
	if n := len(e.freeB); n > 0 {
		idx = e.freeB[n-1]
		e.freeB = e.freeB[:n-1]
	} else {
		e.bodies = append(e.bodies, evBody{})
		idx = int32(len(e.bodies) - 1)
	}
	e.bodies[idx] = b
	e.seq++
	e.pq.push(event{t: t, seq: e.seq, idx: idx})
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.schedule(t, evBody{kind: evFn, fn: fn})
}

// After schedules fn to run d seconds from now. Negative d panics.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// CompleteAt schedules f to complete at absolute virtual time t — the typed
// replacement for At(t, func(){ f.Complete(e) }) on the per-message hot
// path (sender-side request completion, collective release). The caller
// must keep f alive and un-recycled until the event fires.
func (e *Engine) CompleteAt(t Time, f *Future) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.schedule(t, evBody{kind: evFuture, fut: f})
}

// CompleteAfter schedules f to complete d seconds from now.
func (e *Engine) CompleteAfter(d float64, f *Future) { e.CompleteAt(e.now+d, f) }

// DeliverAt schedules a message-delivery event: at time t the registered
// MsgSink receives the payload verbatim. This is the closure-free delivery
// path — the payload is a value in the event arena, so a simulated message
// costs no heap allocation to schedule.
func (e *Engine) DeliverAt(t Time, src, dst, tag int32, bytes int64, local bool) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	if e.sink == nil {
		panic("sim: DeliverAt with no MsgSink registered")
	}
	e.schedule(t, evBody{kind: evMsg, src: src, dst: dst, tag: tag, bytes: bytes, local: local})
}

// SetInterrupt installs a cancellation poll. Run (and the sharded
// scheduler's window loop) calls fn periodically — every few thousand events,
// so a hot simulation pays one predictable branch per event — and panics
// with ErrInterrupted when it reports true. fn is called from the engine
// goroutine; it must be safe to call concurrently with whatever sets the
// underlying flag (an atomic, like harness.Meter.Aborted).
func (e *Engine) SetInterrupt(fn func() bool) { e.intr = fn }

// injectSilent schedules fn at t without counting it as an executed event.
// Only the sharded coordinator uses it (between windows), so unlike the
// public scheduling API it asserts t is not in the shard's past — that would
// mean the window-safety invariant was already violated upstream.
func (e *Engine) injectSilent(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: silent injection at %v before now %v", t, e.now))
	}
	e.schedule(t, evBody{kind: evSilent, fn: fn})
}

// nextTime returns the time of the earliest pending event, if any.
func (e *Engine) nextTime() (Time, bool) {
	if len(e.pq) == 0 {
		return 0, false
	}
	return e.pq[0].t, true
}

// schedProc schedules a process resume at absolute time t.
func (e *Engine) schedProc(t Time, p *Proc) {
	if t < e.now {
		panic("sim: proc scheduled in the past")
	}
	e.schedule(t, evBody{kind: evProc, proc: p})
}

// Step executes the next event. It returns false when no events remain.
// This is the simulator's innermost loop — §profiling puts it on every
// flame graph — so allocations here are policed by the hotalloc rule.
//
//amr:hotpath
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := e.pq.pop()
	b := e.bodies[ev.idx]
	e.bodies[ev.idx] = evBody{} // release fn/proc/fut references
	e.freeB = append(e.freeB, ev.idx)
	e.now = ev.t
	e.events++
	switch b.kind {
	case evFn:
		b.fn()
	case evProc:
		b.proc.run()
	case evFuture:
		b.fut.Complete(e)
	case evMsg:
		e.sink.DeliverMsg(b.src, b.dst, b.tag, b.bytes, b.local)
	case evSilent:
		e.events-- // coordinator-accounted; see evSilent
		b.fn()
	default:
		panic("sim: unknown event kind")
	}
	return true
}

// Run executes events until none remain, then returns the final time.
// Processes still blocked on futures at that point are stuck (a deadlock in
// the simulated program); query Blocked() to detect this.
func (e *Engine) Run() Time {
	if e.running {
		panic("sim: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for n := 0; e.Step(); n++ {
		if n&4095 == 0 && e.intr != nil && e.intr() {
			panic(ErrInterrupted)
		}
	}
	return e.now
}

// runWindow executes events strictly before until — one lookahead window of
// the sharded scheduler. Events at or beyond the window edge stay queued;
// the clock is left at the last executed event (not advanced to the edge),
// so injections landing inside (now, until) remain schedulable.
func (e *Engine) runWindow(until Time) {
	for len(e.pq) > 0 && e.pq[0].t < until {
		e.Step()
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	for len(e.pq) > 0 && e.pq[0].t <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Blocked returns the processes that are blocked (not finished, not
// scheduled). A non-empty result after Run means simulated deadlock.
func (e *Engine) Blocked() []*Proc {
	var out []*Proc
	scheduled := map[*Proc]bool{}
	for _, ev := range e.pq {
		if p := e.bodies[ev.idx].proc; p != nil {
			scheduled[p] = true
		}
	}
	for _, p := range e.procs {
		if !p.finished && p.started && !scheduled[p] {
			out = append(out, p)
		}
	}
	return out
}

// Close terminates all blocked processes by panicking inside them with a
// killed marker (recovered by the process wrapper), releasing their
// goroutines. The engine must not be used afterwards.
func (e *Engine) Close() {
	for _, p := range e.procs {
		if p.started && !p.finished {
			p.kill = true
			p.run() // resumes the proc, which panics and unwinds
		}
	}
}
