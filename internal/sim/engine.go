// Package sim is a deterministic discrete-event simulation engine with a
// process (coroutine) model, the foundation of the simulated MPI cluster.
//
// The paper's placement effects are causal timing chains — a straggler rank
// delays a barrier, a late send stalls a remote wait — so the substitution
// for the real 600-node cluster is a virtual-time simulator that reproduces
// exactly those chains. Determinism is guaranteed by a (time, sequence)
// ordered event heap and by running exactly one process at a time: identical
// inputs replay identical schedules, which is what makes the telemetry
// experiments reproducible.
//
// Processes are goroutines that synchronize with the engine through paired
// channels: the engine resumes a process, the process runs until it blocks
// (Sleep, Await) or finishes, then hands control back. Only one goroutine is
// ever runnable, so process code needs no locking.
package sim

import "fmt"

// Time is virtual time in seconds.
type Time = float64

type event struct {
	t   Time
	seq int64
	// Exactly one of fn/proc is set: fn events execute inline, proc events
	// resume a blocked process.
	fn   func()
	proc *Proc
}

// eventHeap is a binary min-heap ordered by (t, seq). It is the hottest
// data structure of every simulation, so instead of container/heap — whose
// interface{}-based Push/Pop box each event onto the Go heap and dispatch
// Less/Swap through an interface — the sift operations are inlined and
// typed: push/pop never allocate beyond slice growth.
type eventHeap []event

// less orders events by time, breaking ties by schedule sequence so
// same-time events replay in scheduling order (the determinism guarantee).
func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

// push appends ev and restores the heap by sifting it up.
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum event, sifting the root down.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release fn/proc references
	q = q[:n]
	*h = q
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && q.less(right, left) {
			least = right
		}
		if !q.less(least, i) {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	return top
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine. Engines are not safe for concurrent use.
type Engine struct {
	now     Time
	seq     int64
	events  int64
	pq      eventHeap
	procs   []*Proc // all spawned processes, for Close
	running bool
}

// NewEngine returns an empty engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events executed so far — the DES work metric
// reported per run by the campaign harness.
func (e *Engine) Events() int64 { return e.events }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	e.pq.push(event{t: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds from now. Negative d panics.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// schedProc schedules a process resume at absolute time t.
func (e *Engine) schedProc(t Time, p *Proc) {
	if t < e.now {
		panic("sim: proc scheduled in the past")
	}
	e.seq++
	e.pq.push(event{t: t, seq: e.seq, proc: p})
}

// Step executes the next event. It returns false when no events remain.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := e.pq.pop()
	e.now = ev.t
	e.events++
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.proc.run()
	}
	return true
}

// Run executes events until none remain, then returns the final time.
// Processes still blocked on futures at that point are stuck (a deadlock in
// the simulated program); query Blocked() to detect this.
func (e *Engine) Run() Time {
	if e.running {
		panic("sim: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with time <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	for len(e.pq) > 0 && e.pq[0].t <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Blocked returns the processes that are blocked (not finished, not
// scheduled). A non-empty result after Run means simulated deadlock.
func (e *Engine) Blocked() []*Proc {
	var out []*Proc
	scheduled := map[*Proc]bool{}
	for _, ev := range e.pq {
		if ev.proc != nil {
			scheduled[ev.proc] = true
		}
	}
	for _, p := range e.procs {
		if !p.finished && p.started && !scheduled[p] {
			out = append(out, p)
		}
	}
	return out
}

// Close terminates all blocked processes by panicking inside them with a
// killed marker (recovered by the process wrapper), releasing their
// goroutines. The engine must not be used afterwards.
func (e *Engine) Close() {
	for _, p := range e.procs {
		if p.started && !p.finished {
			p.kill = true
			p.run() // resumes the proc, which panics and unwinds
		}
	}
}
