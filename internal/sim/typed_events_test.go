package sim

import "testing"

// msgRec is a test MsgSink recording every delivery it receives.
type msgRec struct {
	src, dst, tag []int32
	bytes         []int64
	local         []bool
	at            []Time
	eng           *Engine
}

func (s *msgRec) DeliverMsg(src, dst, tag int32, bytes int64, local bool) {
	s.src = append(s.src, src)
	s.dst = append(s.dst, dst)
	s.tag = append(s.tag, tag)
	s.bytes = append(s.bytes, bytes)
	s.local = append(s.local, local)
	s.at = append(s.at, s.eng.Now())
}

func TestCompleteAtCompletesFuture(t *testing.T) {
	e := NewEngine()
	f := NewFuture()
	var got Time = -1
	e.Spawn("waiter", func(p *Proc) {
		p.Await(f)
		got = p.Now()
	})
	e.CompleteAt(3, f)
	e.Run()
	if got != 3 {
		t.Fatalf("waiter resumed at %v, want 3", got)
	}
	if !f.Done() {
		t.Fatal("future not done")
	}
}

func TestCompleteAtInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("past CompleteAt did not panic")
		}
	}()
	e.CompleteAt(5, NewFuture())
}

func TestDeliverAtRoutesPayloadToSink(t *testing.T) {
	e := NewEngine()
	s := &msgRec{eng: e}
	e.SetSink(s)
	e.DeliverAt(2, 4, 7, 9, 4096, true)
	e.DeliverAt(1, 1, 2, 3, 64, false)
	e.Run()
	if len(s.at) != 2 {
		t.Fatalf("sink saw %d deliveries, want 2", len(s.at))
	}
	// Time order: the t=1 delivery first.
	if s.at[0] != 1 || s.src[0] != 1 || s.dst[0] != 2 || s.tag[0] != 3 ||
		s.bytes[0] != 64 || s.local[0] {
		t.Fatalf("first delivery = src=%d dst=%d tag=%d bytes=%d local=%v at %v",
			s.src[0], s.dst[0], s.tag[0], s.bytes[0], s.local[0], s.at[0])
	}
	if s.at[1] != 2 || s.src[1] != 4 || s.dst[1] != 7 || s.tag[1] != 9 ||
		s.bytes[1] != 4096 || !s.local[1] {
		t.Fatalf("second delivery = src=%d dst=%d tag=%d bytes=%d local=%v at %v",
			s.src[1], s.dst[1], s.tag[1], s.bytes[1], s.local[1], s.at[1])
	}
}

func TestDeliverAtTieBreaksBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	s := &msgRec{eng: e}
	e.SetSink(s)
	// Same time, interleaved with fn events: replay must follow schedule
	// order across variants (the determinism contract).
	var order []string
	e.At(5, func() { order = append(order, "fn1") })
	e.DeliverAt(5, 0, 0, 1, 0, false)
	e.At(5, func() { order = append(order, "fn2") })
	e.DeliverAt(5, 0, 0, 2, 0, false)
	e.SetSink(s) // re-registering the same sink is fine
	e.Run()
	if len(order) != 2 || len(s.tag) != 2 {
		t.Fatalf("order=%v tags=%v", order, s.tag)
	}
	if s.tag[0] != 1 || s.tag[1] != 2 {
		t.Fatalf("same-time deliveries reordered: tags=%v", s.tag)
	}
}

func TestDeliverAtWithoutSinkPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("DeliverAt with no sink did not panic")
		}
	}()
	e.DeliverAt(1, 0, 1, 0, 0, false)
}

func TestSetSinkTwiceWithDifferentSinksPanics(t *testing.T) {
	e := NewEngine()
	e.SetSink(&msgRec{eng: e})
	defer func() {
		if recover() == nil {
			t.Fatal("second distinct SetSink did not panic")
		}
	}()
	e.SetSink(&msgRec{eng: e})
}

func TestFutureReset(t *testing.T) {
	e := NewEngine()
	f := NewFuture()
	e.Spawn("w", func(p *Proc) { p.Await(f) })
	e.CompleteAt(1, f)
	e.Run()
	f.Reset()
	if f.Done() {
		t.Fatal("reset future still done")
	}
	// The reset future must be awaitable again.
	var got Time = -1
	e.Spawn("w2", func(p *Proc) {
		p.Await(f)
		got = p.Now()
	})
	e.CompleteAt(4, f)
	e.Run()
	if got != 4 {
		t.Fatalf("second await resumed at %v, want 4", got)
	}
}

func TestResetPendingFutureWithWaiterPanics(t *testing.T) {
	e := NewEngine()
	f := NewFuture()
	e.Spawn("w", func(p *Proc) { p.Await(f) })
	// Run until the waiter parks on the pending future.
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("Reset of a pending future with a waiter did not panic")
		}
		e.Close()
	}()
	f.Reset()
}
