package sim

import "fmt"

// Proc is a simulated process: a goroutine whose execution is interleaved
// deterministically by the engine. All Proc methods must be called from the
// process's own goroutine (inside the function passed to Spawn).
type Proc struct {
	eng  *Engine
	name string

	// hand is the single rendezvous channel between the engine and the
	// process. Control strictly alternates — the engine sends to resume the
	// process, then receives its yield; the process sends to yield, then
	// receives its next resume — so one channel serves both directions.
	// (The previous two-channel handoff touched two hchans per switch; one
	// channel keeps the same hchan hot in cache for all four operations.)
	hand chan struct{}

	started  bool
	finished bool
	kill     bool

	// panicked captures a non-kill panic raised inside the process body; the
	// engine re-raises it when it regains control (see run).
	panicked interface{}
}

// killedError unwinds a process goroutine terminated by Engine.Close.
type killedError struct{ name string }

func (k killedError) Error() string { return "sim: proc " + k.name + " killed" }

// Spawn creates a process running fn, scheduled to start at the current
// virtual time. fn runs in its own goroutine under engine control.
//
// A panic inside fn (other than the engine-kill unwind) is captured and
// re-raised from the engine caller's goroutine (Run/Step), where tests and
// the campaign harness can recover it — a panic in the process goroutine
// itself would crash the whole process unrecoverably. After such a panic the
// engine is poisoned: remaining process goroutines stay parked until process
// exit, exactly like a timed-out harness run.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:  e,
		name: name,
		hand: make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	//lint:ignore determinism DES coroutine: the hand channel keeps exactly one goroutine runnable at a time, so interleaving is fixed by the event order
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedError); !ok {
					p.panicked = r // re-raised by run in the engine goroutine
				}
			}
			p.finished = true
			p.hand <- struct{}{}
		}()
		<-p.hand
		p.checkKill()
		fn(p)
	}()
	e.schedProc(e.now, p)
	p.started = true
	return p
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// run resumes the process goroutine and waits until it blocks or finishes.
// Called only by the engine. A panic captured from the process body is
// re-raised here, in the engine caller's goroutine.
func (p *Proc) run() {
	p.hand <- struct{}{}
	<-p.hand
	if r := p.panicked; r != nil {
		p.panicked = nil
		panic(r)
	}
}

// block hands control back to the engine and waits to be rescheduled.
func (p *Proc) block() {
	p.hand <- struct{}{}
	<-p.hand
	p.checkKill()
}

func (p *Proc) checkKill() {
	if p.kill {
		panic(killedError{p.name})
	}
}

// Sleep advances this process by d virtual seconds. Negative d panics.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	p.eng.schedProc(p.eng.now+d, p)
	p.block()
}

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Await blocks until f completes. If f is already complete it returns
// immediately without yielding.
func (p *Proc) Await(f *Future) {
	if f.done {
		return
	}
	if f.w0 == nil {
		f.w0 = p
	} else {
		f.more = append(f.more, p)
	}
	p.block()
}

// AwaitAll blocks until every future completes, in order.
func (p *Proc) AwaitAll(fs []*Future) {
	for _, f := range fs {
		p.Await(f)
	}
}

// Future is a one-shot completion signal processes can Await. The zero value
// is a pending future.
//
// The first waiter is stored inline: almost every future in the MPI runtime
// (send and receive requests) has exactly one waiter, so the common Await
// never touches the overflow slice and never allocates. An owner that pools
// futures may return one to pending with Reset once it has completed and
// every waiter has resumed.
type Future struct {
	done bool
	w0   *Proc   // first waiter, inline
	more []*Proc // additional waiters, in Await order (collectives)
}

// NewFuture returns a pending future.
func NewFuture() *Future { return &Future{} }

// Done reports whether the future has completed.
func (f *Future) Done() bool { return f.done }

// Complete marks the future done and schedules every waiter to resume at the
// current virtual time, in Await order. Completing twice panics — it would
// indicate double delivery of a message.
func (f *Future) Complete(e *Engine) {
	if f.done {
		panic("sim: Future completed twice")
	}
	f.done = true
	if w := f.w0; w != nil {
		f.w0 = nil
		e.schedProc(e.now, w)
	}
	for _, w := range f.more {
		e.schedProc(e.now, w)
	}
	f.more = f.more[:0] // keep capacity for pooled reuse
}

// Reset returns a completed future to pending so its owner can reuse it
// (the request/collective pools of the MPI runtime). Only safe after
// Complete has run and every waiter has resumed: resetting a pending future
// would strand its waiters, so that is a programming error and panics.
func (f *Future) Reset() {
	if !f.done && (f.w0 != nil || len(f.more) > 0) {
		panic("sim: Reset of a pending future with waiters")
	}
	f.done = false
	f.w0 = nil
	f.more = f.more[:0]
}
