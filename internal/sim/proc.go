package sim

import "fmt"

// Proc is a simulated process: a goroutine whose execution is interleaved
// deterministically by the engine. All Proc methods must be called from the
// process's own goroutine (inside the function passed to Spawn).
type Proc struct {
	eng  *Engine
	name string

	sched chan struct{} // engine → proc: you may run
	yield chan struct{} // proc → engine: I am blocked or done

	started  bool
	finished bool
	kill     bool

	// panicked captures a non-kill panic raised inside the process body; the
	// engine re-raises it when it regains control (see run).
	panicked interface{}
}

// killedError unwinds a process goroutine terminated by Engine.Close.
type killedError struct{ name string }

func (k killedError) Error() string { return "sim: proc " + k.name + " killed" }

// Spawn creates a process running fn, scheduled to start at the current
// virtual time. fn runs in its own goroutine under engine control.
//
// A panic inside fn (other than the engine-kill unwind) is captured and
// re-raised from the engine caller's goroutine (Run/Step), where tests and
// the campaign harness can recover it — a panic in the process goroutine
// itself would crash the whole process unrecoverably. After such a panic the
// engine is poisoned: remaining process goroutines stay parked until process
// exit, exactly like a timed-out harness run.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:   e,
		name:  name,
		sched: make(chan struct{}),
		yield: make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedError); !ok {
					p.panicked = r // re-raised by run in the engine goroutine
				}
			}
			p.finished = true
			p.yield <- struct{}{}
		}()
		<-p.sched
		p.checkKill()
		fn(p)
	}()
	e.schedProc(e.now, p)
	p.started = true
	return p
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// run resumes the process goroutine and waits until it blocks or finishes.
// Called only by the engine. A panic captured from the process body is
// re-raised here, in the engine caller's goroutine.
func (p *Proc) run() {
	p.sched <- struct{}{}
	<-p.yield
	if r := p.panicked; r != nil {
		p.panicked = nil
		panic(r)
	}
}

// block hands control back to the engine and waits to be rescheduled.
func (p *Proc) block() {
	p.yield <- struct{}{}
	<-p.sched
	p.checkKill()
}

func (p *Proc) checkKill() {
	if p.kill {
		panic(killedError{p.name})
	}
}

// Sleep advances this process by d virtual seconds. Negative d panics.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	p.eng.schedProc(p.eng.now+d, p)
	p.block()
}

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Await blocks until f completes. If f is already complete it returns
// immediately without yielding.
func (p *Proc) Await(f *Future) {
	if f.done {
		return
	}
	f.waiters = append(f.waiters, p)
	p.block()
}

// AwaitAll blocks until every future completes, in order.
func (p *Proc) AwaitAll(fs []*Future) {
	for _, f := range fs {
		p.Await(f)
	}
}

// Future is a one-shot completion signal processes can Await. The zero value
// is a pending future.
type Future struct {
	done    bool
	waiters []*Proc
}

// NewFuture returns a pending future.
func NewFuture() *Future { return &Future{} }

// Done reports whether the future has completed.
func (f *Future) Done() bool { return f.done }

// Complete marks the future done and schedules every waiter to resume at the
// current virtual time, in Await order. Completing twice panics — it would
// indicate double delivery of a message.
func (f *Future) Complete(e *Engine) {
	if f.done {
		panic("sim: Future completed twice")
	}
	f.done = true
	for _, w := range f.waiters {
		e.schedProc(e.now, w)
	}
	f.waiters = nil
}
