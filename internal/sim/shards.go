// Conservative parallel DES: node-sharded event queues under a
// lookahead-window scheduler.
//
// The sequential Engine executes one global (t, seq) heap; at large rank
// counts that single heap is the wall-clock bottleneck (ROADMAP item 4).
// Shards splits the simulated cluster into groups of nodes, giving each
// group its own Engine, and exploits the physical property that ranks on
// different nodes can only interact through the fabric: every cross-node
// message is delayed by at least the network's lookahead bound L
// (simnet.Config.Lookahead — RemoteLatency, with per-message overhead on
// top). Events less than L apart on different shards are therefore causally
// independent and may execute in any order — including concurrently.
//
// The scheduler alternates two phases:
//
//	window  — every shard with an event before the window edge
//	          W + L executes its events strictly below the edge
//	          (W = earliest pending event across shards). Shards touch only
//	          their own state; cross-shard sends are appended to a per-shard
//	          staging buffer, never delivered directly.
//	merge   — on the coordinator goroutine: staged messages are sorted by
//	          (t, src rank, per-source sequence) and injected into their
//	          destination shards, then the registered merge hooks run (the
//	          MPI layer completes collective rounds, the driver flushes
//	          per-rank table rows). Each injection is audited against the
//	          window-safety invariant: nothing may land before the merged
//	          horizon, because events below it already executed.
//
// Determinism does not depend on the execution mode of a window (inline on
// the coordinator vs fanned out to the worker pool): events inside a window
// are pairwise independent across shards, each shard's own order is fixed by
// its heap, and the merge order is fixed by sorting — so tables are
// byte-identical for any shard count N >= 1 and any GOMAXPROCS.
package sim

import (
	"math"
	"sort"

	"amrtools/internal/check"
	"amrtools/internal/metrics"
)

// stagedMsg is one cross-shard message delivery parked in a staging buffer
// until the next merge. The (t, src, seq) triple is the deterministic merge
// key: seq is a per-source-rank program-order counter maintained by the MPI
// layer, so ties at equal t between sources break by rank and within a
// source by issue order — independent of shard count and worker scheduling.
type stagedMsg struct {
	t        Time
	seq      int64
	bytes    int64
	src      int32
	dst      int32
	tag      int32
	dstShard int32
}

// Shards is the conservative parallel scheduler: a fixed set of Engines
// (one per node group) advanced in lockstep lookahead windows. Construct
// with NewShards; all methods except the staging/injection APIs documented
// otherwise must be called from the coordinator goroutine (the Run caller).
type Shards struct {
	engs      []*Engine
	lookahead float64
	horizon   Time  // end of the last executed window; injections must land at or beyond it
	extra     int64 // coordinator-accounted events (completed collective rounds)
	paranoid  bool

	out     [][]stagedMsg // staged cross-shard deliveries, indexed by source shard
	scratch []stagedMsg   // merge-time sort buffer, reused across windows
	active  []int         // shards with an event inside the current window, reused
	hooks   []func(horizon Time)
	intr    func() bool

	// minParallel is the number of window-active shards at which the window
	// fans out to the worker pool instead of running inline on the
	// coordinator. Windows in the compute-spread phase of a BSP step usually
	// hold a handful of events on one or two shards — fanning those out
	// would cost more in handoffs than the events themselves — while
	// barrier-release bursts activate every shard at once and parallelize
	// well. Execution mode never affects results (see package comment).
	minParallel int

	workers []chan Time   // per-shard window commands (nil until first fan-out)
	done    chan int      // worker completion notifications
	panics  []interface{} // per-shard panic captured during a fanned-out window

	// mx, when non-nil, is the run's host-plane scheduler instrument set
	// (internal/metrics): window counts, events per window, occupancy,
	// merge depth. Host plane because all of it depends on the shard count;
	// updated only on the coordinator, between window executions. evBase is
	// its per-window Events() baseline, reused across windows.
	mx     *metrics.SchedMetrics
	evBase []int64

	running bool
}

// defaultMinParallel is the fan-out threshold; see Shards.minParallel.
const defaultMinParallel = 2

// NewShards builds n empty engines under a scheduler with the given
// lookahead bound (seconds of virtual time; must be positive — the network
// guarantees every cross-shard delivery is delayed by at least this much).
func NewShards(n int, lookahead float64) *Shards {
	if n < 1 {
		panic("sim: NewShards with no shards")
	}
	if !(lookahead > 0) {
		panic("sim: NewShards with non-positive lookahead")
	}
	s := &Shards{
		engs:        make([]*Engine, n),
		lookahead:   lookahead,
		out:         make([][]stagedMsg, n),
		minParallel: defaultMinParallel,
		paranoid:    check.Forced(),
	}
	for i := range s.engs {
		s.engs[i] = NewEngine()
	}
	return s
}

// NumShards returns the shard count.
func (s *Shards) NumShards() int { return len(s.engs) }

// Engine returns shard i's engine. Procs spawned on it must only touch
// state owned by that shard between windows.
func (s *Shards) Engine(i int) *Engine { return s.engs[i] }

// Engines returns the per-shard engines, indexed by shard.
func (s *Shards) Engines() []*Engine { return s.engs }

// Lookahead returns the scheduler's lookahead bound.
func (s *Shards) Lookahead() float64 { return s.lookahead }

// SetParanoid enables the stage-time window-safety audit (the inject-time
// audit is always on). The global check.Force override wins.
func (s *Shards) SetParanoid(on bool) { s.paranoid = check.Enabled(on) }

// SetInterrupt installs a cancellation poll, checked once per window; Run
// panics with ErrInterrupted when it reports true.
func (s *Shards) SetInterrupt(fn func() bool) { s.intr = fn }

// SetMinParallel overrides the fan-out threshold (active shards per window
// at which the worker pool engages). n <= 0 restores the default. Results
// are independent of this knob; tests set 1 to force every multi-shard
// window through the worker pool.
func (s *Shards) SetMinParallel(n int) {
	if n <= 0 {
		n = defaultMinParallel
	}
	s.minParallel = n
}

// SetMetrics attaches the run's scheduler instrument set (nil detaches it).
func (s *Shards) SetMetrics(mx *metrics.SchedMetrics) { s.mx = mx }

// OnMerge registers a hook run on the coordinator after each window, once
// staged deliveries are injected. Hooks run in registration order with the
// merged horizon: every event with t < horizon has executed, and any work
// the hook injects must land at or beyond it. The MPI layer registers its
// collective-round completion here; the driver registers its table flush.
func (s *Shards) OnMerge(fn func(horizon Time)) { s.hooks = append(s.hooks, fn) }

// StageDelivery parks a cross-shard message delivery in the source shard's
// staging buffer. Safe to call from srcShard's executor during a window (the
// buffer is owned by that shard until the next merge). seq must be a
// per-source-rank program-order counter — it is the deterministic tie-break
// for equal-time deliveries from the same rank.
func (s *Shards) StageDelivery(srcShard, dstShard int, t Time, src, dst, tag int32, bytes int64, seq int64) {
	if s.paranoid {
		// The conservative guarantee itself: a cross-shard effect must be at
		// least one lookahead away from its cause, or the window that is
		// about to execute on the destination shard could miss it.
		now := s.engs[srcShard].now
		check.Assertf(t >= now+s.lookahead, "sim", "window-safety",
			"delivery %d->%d tag %d staged at t=%.9g, within lookahead %.3g of source shard %d clock %.9g",
			src, dst, tag, t, s.lookahead, srcShard, now) //lint:ignore hotalloc paranoid-gated: boxing only happens inside the s.paranoid audit branch, which production runs disable
	}
	s.out[srcShard] = append(s.out[srcShard], stagedMsg{
		t: t, seq: seq, bytes: bytes, src: src, dst: dst, tag: tag, dstShard: int32(dstShard),
	})
}

// InjectAt schedules coordinator-originated work (a collective release) on a
// shard. Only merge hooks may call it. The event is silent — the caller
// accounts its work via AddCoordinatorEvents so Events() stays independent
// of the shard count.
func (s *Shards) InjectAt(shard int, t Time, fn func()) {
	if t < s.horizon {
		check.Failf("sim", "window-safety",
			"coordinator injection on shard %d at t=%.9g before merged horizon %.9g",
			shard, t, s.horizon)
	}
	s.engs[shard].injectSilent(t, fn)
}

// AddCoordinatorEvents accounts n units of coordinator work in Events().
func (s *Shards) AddCoordinatorEvents(n int64) { s.extra += n }

// Events returns the total executed events across shards plus the
// coordinator-accounted work — comparable with Engine.Events for the same
// simulated program.
func (s *Shards) Events() int64 {
	total := s.extra
	for _, e := range s.engs {
		total += e.Events()
	}
	return total
}

// Now returns the maximum shard clock — after Run, the simulated makespan.
func (s *Shards) Now() Time {
	var t Time
	for _, e := range s.engs {
		if e.Now() > t {
			t = e.Now()
		}
	}
	return t
}

// Blocked aggregates blocked processes across shards, in shard order.
func (s *Shards) Blocked() []*Proc {
	var out []*Proc
	for _, e := range s.engs {
		out = append(out, e.Blocked()...)
	}
	return out
}

// Close stops the worker pool and terminates all blocked processes on every
// shard. The scheduler must not be used afterwards.
func (s *Shards) Close() {
	for _, cmd := range s.workers {
		close(cmd)
	}
	s.workers = nil
	for _, e := range s.engs {
		e.Close()
	}
}

// Run advances windows until every shard drains and no hook injects further
// work, then returns the simulated makespan. Deadlocked processes are left
// blocked; query Blocked() as with Engine.Run.
func (s *Shards) Run() Time {
	if s.running {
		panic("sim: Run re-entered")
	}
	s.running = true
	defer func() { s.running = false }()
	for {
		if s.intr != nil && s.intr() {
			panic(ErrInterrupted)
		}
		// Merge first: the previous window's staged deliveries and any
		// completed collective rounds are the only sources of new events, so
		// the drain check below is authoritative only after hooks ran.
		s.mergeStaged()
		for _, h := range s.hooks {
			h(s.horizon)
		}
		w := math.Inf(1)
		for _, e := range s.engs {
			if t, ok := e.nextTime(); ok && t < w {
				w = t
			}
		}
		if math.IsInf(w, 1) {
			break // drained
		}
		end := w + s.lookahead
		s.runOneWindow(end)
		s.horizon = end
	}
	return s.Now()
}

// mergeStaged drains every shard's staging buffer, orders the deliveries by
// (t, src, seq), audits each against the merged horizon, and injects them
// into their destination engines. Injection order assigns destination-heap
// sequence numbers, so equal-time deliveries replay identically for any
// shard count.
func (s *Shards) mergeStaged() {
	sc := s.scratch[:0]
	for i := range s.out {
		sc = append(sc, s.out[i]...)
		s.out[i] = s.out[i][:0]
	}
	if len(sc) == 0 {
		s.scratch = sc
		return
	}
	if mx := s.mx; mx != nil {
		mx.MergeDepth.Observe(float64(len(sc)))
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].t != sc[j].t {
			return sc[i].t < sc[j].t
		}
		if sc[i].src != sc[j].src {
			return sc[i].src < sc[j].src
		}
		return sc[i].seq < sc[j].seq
	})
	for _, m := range sc {
		if m.t < s.horizon {
			check.Failf("sim", "window-safety",
				"staged delivery %d->%d tag %d at t=%.9g merged after horizon %.9g already executed (lookahead %.3g)",
				m.src, m.dst, m.tag, m.t, s.horizon, s.lookahead)
		}
		s.engs[m.dstShard].DeliverAt(m.t, m.src, m.dst, m.tag, m.bytes, false)
	}
	s.scratch = sc[:0]
}

// runOneWindow executes one window on every shard holding an event before
// end — inline on the coordinator below the fan-out threshold, on the
// worker pool at or above it.
func (s *Shards) runOneWindow(end Time) {
	act := s.active[:0]
	for i, e := range s.engs {
		if t, ok := e.nextTime(); ok && t < end {
			act = append(act, i)
		}
	}
	s.active = act
	if mx := s.mx; mx != nil {
		mx.Windows.Inc()
		mx.ActiveShards.Observe(float64(len(act)))
		if s.evBase == nil {
			s.evBase = make([]int64, len(s.engs))
		}
		for _, i := range act {
			s.evBase[i] = s.engs[i].Events()
		}
	}
	if len(act) < s.minParallel {
		for _, i := range act {
			s.engs[i].runWindow(end)
		}
		s.observeWindow(act)
		return
	}
	if mx := s.mx; mx != nil {
		mx.ParallelWindows.Inc()
	}
	s.startWorkers()
	for _, i := range act {
		s.workers[i] <- end
	}
	for range act {
		<-s.done
	}
	// Propagate the lowest panicking shard's value, matching the inline
	// path's shard-order abort point: the panicking set is deterministic
	// (each shard's window execution is), so the surfaced panic is too.
	for _, i := range act {
		if pv := s.panics[i]; pv != nil {
			s.panics[i] = nil
			panic(pv)
		}
	}
	s.observeWindow(act)
}

// observeWindow records the finished window's per-shard event deltas into
// the host-plane instruments: total events this window and the max/mean
// imbalance across its active shards.
func (s *Shards) observeWindow(act []int) {
	mx := s.mx
	if mx == nil || len(act) == 0 {
		return
	}
	var total, max int64
	for _, i := range act {
		d := s.engs[i].Events() - s.evBase[i]
		total += d
		if d > max {
			max = d
		}
	}
	mx.WindowEvents.Observe(float64(total))
	if total > 0 {
		mx.ImbalanceMax.SetMax(float64(max) * float64(len(act)) / float64(total))
	}
}

// startWorkers lazily spawns one worker goroutine per shard. A worker owns
// its engine only between a window command and the matching completion
// notification; the coordinator owns it otherwise, so engine state needs no
// locking and every handoff is a happens-before edge.
func (s *Shards) startWorkers() {
	if s.workers != nil {
		return
	}
	s.workers = make([]chan Time, len(s.engs))
	s.done = make(chan int, len(s.engs))
	s.panics = make([]interface{}, len(s.engs))
	for i := range s.engs {
		cmd := make(chan Time)
		s.workers[i] = cmd
		eng, id := s.engs[i], i
		//lint:ignore determinism conservative-PDES worker pool: shards own disjoint engine state, cross-shard effects only move through the staged merge sorted by (t, src, seq), and the cmd/done channels give every window a fixed fork-join — so worker interleaving can never reach result tables
		go func() {
			for end := range cmd {
				func() {
					defer func() {
						if r := recover(); r != nil {
							s.panics[id] = r
						}
					}()
					eng.runWindow(end)
				}()
				s.done <- id
			}
		}()
	}
}
