// Package physics provides proxy problems that drive mesh refinement and
// per-block compute costs the way the paper's applications do.
//
// The evaluation codes are Phoebus (Sedov Blast Wave 3D) and AthenaPK
// (galaxy cooling) — GRMHD/hydro codes we cannot run. The placement problem,
// however, only observes three things: which blocks exist over time, their
// measured compute costs, and their adjacency. These proxies reproduce those
// observables:
//
//   - SedovBlastWave: a spherical shock front expanding as the Sedov–Taylor
//     similarity solution r(t) ∝ t^(2/5). Blocks intersecting the front are
//     refined to max level (block counts grow as the shock sweeps the
//     domain, matching Table I's n_initial → n_final growth) and cost more
//     to compute (steep gradients need more solver iterations, §II-B).
//   - GalaxyCooling: static clustered hot spots with heavy-tailed costs and
//     stable refinement — the "directionally similar, lower variability"
//     workload of §VI.
package physics

import (
	"math"

	"amrtools/internal/mesh"
	"amrtools/internal/xrand"
)

// Problem drives refinement tagging and block compute costs over timesteps.
type Problem interface {
	// Name identifies the problem in experiment output.
	Name() string
	// WantRefine reports whether leaf id should be refined at step.
	WantRefine(id mesh.BlockID, step int) bool
	// WantCoarsen reports whether leaf id may be coarsened at step.
	WantCoarsen(id mesh.BlockID, step int) bool
	// Cost returns the nominal compute cost (in block-cost units, ~1 for a
	// quiescent block) of leaf id at step.
	Cost(id mesh.BlockID, step int) float64
}

// SedovBlastWave is the expanding spherical shock proxy.
type SedovBlastWave struct {
	// Domain is the mesh root dimensions (blocks span [0,Domain[d]] in
	// root-block units).
	Domain [3]float64
	// Center is the explosion origin in root-block units. Defaults to the
	// domain center when zero.
	Center [3]float64
	// TotalSteps is the step count over which the shock crosses the domain.
	TotalSteps int
	// ShellWidth is the half-width of the refinement shell around the
	// front, in root-block units.
	ShellWidth float64
	// PeakCost is the compute cost of a block sitting on the front;
	// quiescent blocks cost 1.
	PeakCost float64
	// CostNoise is the relative lognormal noise on *persistent* per-block
	// costs: some blocks are inherently harder (local solution structure),
	// and stay so across steps — which is exactly what makes measured-cost
	// placement work (§V-A3).
	CostNoise float64
	// StepNoise is the relative lognormal noise redrawn every step —
	// the unbalanceable component of kernel variability.
	StepNoise float64

	seed uint64
}

// NewSedov builds a Sedov problem for a mesh with the given root dims,
// centered in the domain. The defaults are calibrated so front blocks
// dominate rank loads without dwarfing them, matching the imbalance levels
// the paper reports placement can recover (~tens of percent of runtime).
func NewSedov(rootDims [3]int, totalSteps int, seed uint64) *SedovBlastWave {
	d := [3]float64{float64(rootDims[0]), float64(rootDims[1]), float64(rootDims[2])}
	// The shell width shrinks with domain size (in root-block units) so the
	// refined-shell population stays proportional to the rank count as the
	// front surface grows ∝ r² — keeping every Table I configuration in the
	// paper's ~2–4 blocks-per-rank regime.
	minDim := math.Min(d[0], math.Min(d[1], d[2]))
	shell := 0.6 * math.Sqrt(8/minDim)
	return &SedovBlastWave{
		Domain:     d,
		Center:     [3]float64{d[0] / 2, d[1] / 2, d[2] / 2},
		TotalSteps: totalSteps,
		ShellWidth: shell,
		PeakCost:   6,
		CostNoise:  0.3,
		StepNoise:  0.05,
		seed:       seed,
	}
}

// blockFactor is the persistent per-block cost multiplier, derived from a
// hash of the block's identity so it is stable across steps and runs.
func blockFactor(id mesh.BlockID, seed uint64, sigma float64) float64 {
	if sigma == 0 {
		return 1
	}
	h := seed ^ (uint64(id.Level) * 0x9e3779b97f4a7c15)
	h ^= uint64(id.X)<<42 | uint64(id.Y)<<21 | uint64(id.Z)
	return xrand.New(h).LogNormal(0, sigma)
}

// stepFactor is the per-(block, step) cost multiplier — kernel noise redrawn
// every step. Like blockFactor it is a pure hash of its inputs rather than a
// draw from a shared stream: cost queries must not depend on the order ranks
// happen to evaluate them (concurrent rank programs would race on a shared
// RNG and perturb results with the scheduler's interleaving).
func stepFactor(id mesh.BlockID, step int, seed uint64, sigma float64) float64 {
	if sigma == 0 {
		return 1
	}
	h := seed ^ 0xa24baed4963ee407 ^ (uint64(step)+1)*0xd6e8feb86659fd93
	h ^= uint64(id.Level) * 0x9e3779b97f4a7c15
	h ^= uint64(id.X)<<42 | uint64(id.Y)<<21 | uint64(id.Z)
	return xrand.New(h).LogNormal(0, sigma)
}

// Name returns "sedov".
func (s *SedovBlastWave) Name() string { return "sedov" }

// Radius returns the shock-front radius at step: the Sedov–Taylor similarity
// solution r ∝ t^(2/5), scaled so the front reaches the nearest domain
// boundary at TotalSteps.
func (s *SedovBlastWave) Radius(step int) float64 {
	if step <= 0 {
		return 0
	}
	rMax := math.Min(s.Domain[0], math.Min(s.Domain[1], s.Domain[2])) / 2
	frac := float64(step) / float64(s.TotalSteps)
	if frac > 1 {
		frac = 1
	}
	return rMax * math.Pow(frac, 0.4)
}

// frontDistance returns the distance from the block's center to the shock
// front at step.
func (s *SedovBlastWave) frontDistance(id mesh.BlockID, step int) float64 {
	c := id.Center()
	// Center() is normalized to root units per dimension already.
	d := 0.0
	for k := 0; k < 3; k++ {
		dd := c[k] - s.Center[k]
		d += dd * dd
	}
	d = math.Sqrt(d)
	return math.Abs(d - s.Radius(step))
}

// band returns the refinement band half-width for a block at the given
// level: the band narrows with level because only the steepest part of the
// gradient (closest to the front) justifies deeper refinement — the analogue
// of gradient-threshold tagging. This keeps block counts in the
// few-blocks-per-rank regime of Table I instead of exploding.
func (s *SedovBlastWave) band(level int) float64 {
	return s.ShellWidth / float64(uint32(1)<<uint(level))
}

// allowedDepth returns the finest refinement level justified at step. The
// Sedov shock weakens as it expands (post-shock gradients fall off steeply
// with radius), so gradient-threshold tagging demotes the deepest levels at
// late times: full depth while the front is within half its final radius,
// one level less beyond. This keeps total block counts in the
// ~2–4 blocks-per-rank regime of Table I across the whole run.
func (s *SedovBlastWave) allowedDepth(step int) int {
	rMax := math.Min(s.Domain[0], math.Min(s.Domain[1], s.Domain[2])) / 2
	depth := 1 << 30 // effectively unlimited; mesh MaxLevel caps it
	if s.Radius(step) > 0.55*rMax {
		depth = 1
	}
	return depth
}

// WantRefine tags blocks whose center lies within their level's band of the
// shock front, subject to the step's allowed depth.
func (s *SedovBlastWave) WantRefine(id mesh.BlockID, step int) bool {
	if id.Level >= s.allowedDepth(step) {
		return false
	}
	return s.frontDistance(id, step) <= s.band(id.Level)
}

// WantCoarsen releases blocks the front has clearly left behind (or not yet
// reached) — hysteresis at 2.5× the level band avoids refine/coarsen
// thrashing at the shell edge — and blocks deeper than the step's allowed
// depth (the weakening shock no longer justifies them).
func (s *SedovBlastWave) WantCoarsen(id mesh.BlockID, step int) bool {
	if id.Level == 0 {
		return false
	}
	if id.Level > s.allowedDepth(step) {
		return true
	}
	// A leaf coarsens when it is outside the band that justified its own
	// existence (its parent's refinement band).
	return s.frontDistance(id, step) > 2.2*s.band(id.Level-1)
}

// Cost rises from 1 (quiescent) to PeakCost on the front, decaying
// exponentially with distance from the shell, times a persistent per-block
// factor (balanceable: telemetry sees it repeat) and a small per-step factor
// (unbalanceable kernel noise). Cost is independent of refinement level:
// every block has the same cell count (§II-B).
func (s *SedovBlastWave) Cost(id mesh.BlockID, step int) float64 {
	d := s.frontDistance(id, step)
	base := 1 + (s.PeakCost-1)*math.Exp(-d/s.ShellWidth)
	base *= blockFactor(id, s.seed, s.CostNoise)
	base *= stepFactor(id, step, s.seed, s.StepNoise)
	return base
}

// GalaxyCooling is the static-clump proxy: a set of hot spots with
// heavy-tailed compute costs and stable refinement.
type GalaxyCooling struct {
	// Domain is the mesh root dimensions.
	Domain [3]float64
	// Clumps are hot-spot centers in root-block units.
	Clumps [][3]float64
	// ClumpRadius is the refinement radius around each clump.
	ClumpRadius float64
	// PeakCost is the cost at a clump center.
	PeakCost float64
	// CostNoise is relative persistent per-block lognormal cost noise.
	CostNoise float64

	seed uint64
}

// NewCooling builds a cooling problem with nClumps random hot spots.
func NewCooling(rootDims [3]int, nClumps int, seed uint64) *GalaxyCooling {
	rng := xrand.New(seed)
	d := [3]float64{float64(rootDims[0]), float64(rootDims[1]), float64(rootDims[2])}
	clumps := make([][3]float64, nClumps)
	for i := range clumps {
		clumps[i] = [3]float64{
			rng.Float64() * d[0],
			rng.Float64() * d[1],
			rng.Float64() * d[2],
		}
	}
	return &GalaxyCooling{
		Domain:      d,
		Clumps:      clumps,
		seed:        seed,
		ClumpRadius: 0.8,
		PeakCost:    3,
		CostNoise:   0.1,
	}
}

// Name returns "cooling".
func (g *GalaxyCooling) Name() string { return "cooling" }

func (g *GalaxyCooling) nearestClump(id mesh.BlockID) float64 {
	c := id.Center()
	best := math.Inf(1)
	for _, cl := range g.Clumps {
		d := 0.0
		for k := 0; k < 3; k++ {
			dd := c[k] - cl[k]
			d += dd * dd
		}
		if d < best {
			best = d
		}
	}
	return math.Sqrt(best)
}

// WantRefine tags blocks within ClumpRadius of a hot spot (steps are
// irrelevant: cooling structure is quasi-static).
func (g *GalaxyCooling) WantRefine(id mesh.BlockID, _ int) bool {
	return g.nearestClump(id) <= g.ClumpRadius
}

// WantCoarsen releases blocks far from every clump.
func (g *GalaxyCooling) WantCoarsen(id mesh.BlockID, _ int) bool {
	return g.nearestClump(id) > 2*g.ClumpRadius
}

// Cost decays with distance to the nearest clump, with persistent per-block
// lognormal noise (cooling costs are stable step to step).
func (g *GalaxyCooling) Cost(id mesh.BlockID, _ int) float64 {
	d := g.nearestClump(id)
	base := 1 + (g.PeakCost-1)*math.Exp(-d/g.ClumpRadius)
	return base * blockFactor(id, g.seed, g.CostNoise)
}
