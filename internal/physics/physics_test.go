package physics

import (
	"testing"

	"amrtools/internal/mesh"
)

func TestSedovRadiusMonotone(t *testing.T) {
	s := NewSedov([3]int{8, 8, 8}, 100, 1)
	prev := -1.0
	for step := 0; step <= 100; step += 5 {
		r := s.Radius(step)
		if r < prev {
			t.Fatalf("radius not monotone at step %d: %v < %v", step, r, prev)
		}
		prev = r
	}
	if s.Radius(0) != 0 {
		t.Fatal("radius at step 0 not zero")
	}
	if s.Radius(100) != 4 { // half the 8-wide domain
		t.Fatalf("final radius = %v, want 4", s.Radius(100))
	}
	if s.Radius(200) != 4 { // clamped past TotalSteps
		t.Fatalf("clamped radius = %v", s.Radius(200))
	}
}

func TestSedovSimilarityExponent(t *testing.T) {
	s := NewSedov([3]int{8, 8, 8}, 1000, 1)
	// r(t) ∝ t^0.4: doubling t multiplies r by 2^0.4 ≈ 1.3195.
	ratio := s.Radius(500) / s.Radius(250)
	if ratio < 1.30 || ratio > 1.34 {
		t.Fatalf("similarity ratio = %v, want ~1.32", ratio)
	}
}

func TestSedovRefinementFollowsFront(t *testing.T) {
	s := NewSedov([3]int{8, 8, 8}, 100, 1)
	center := mesh.BlockID{Level: 0, X: 3, Y: 3, Z: 3} // adjacent to center (4,4,4)
	corner := mesh.BlockID{Level: 0, X: 0, Y: 0, Z: 0}
	// Early: front near center → center block refines, corner does not.
	if !s.WantRefine(center, 2) {
		t.Error("center block not tagged early")
	}
	if s.WantRefine(corner, 2) {
		t.Error("corner block tagged early")
	}
	// Late: front near boundary → refined blocks at the center released.
	// (Root blocks never coarsen — they are the octree base.)
	centerChild := center.Children()[7] // nearest the domain center
	if !s.WantCoarsen(centerChild, 100) {
		t.Error("center child block not released late")
	}
	if s.WantCoarsen(center, 100) {
		t.Error("root block offered for coarsening")
	}
}

func TestSedovCostPeaksAtFront(t *testing.T) {
	s := NewSedov([3]int{8, 8, 8}, 100, 1)
	s.CostNoise = 0
	s.StepNoise = 0
	step := 50
	r := s.Radius(step)
	// A block sitting on the front vs one far away.
	onFront := mesh.BlockID{Level: 0, X: uint32(4 + int(r)), Y: 4, Z: 4}
	far := mesh.BlockID{Level: 0, X: 0, Y: 0, Z: 0}
	cf, cfar := s.Cost(onFront, step), s.Cost(far, step)
	if cf <= cfar {
		t.Fatalf("front cost %v not above far cost %v", cf, cfar)
	}
	if cfar < 1 || cfar > 1.6 {
		t.Fatalf("far cost = %v, want ~1", cfar)
	}
	if cf > s.PeakCost*1.01 {
		t.Fatalf("front cost %v exceeds peak %v", cf, s.PeakCost)
	}
}

func TestSedovCostPositiveWithNoise(t *testing.T) {
	s := NewSedov([3]int{4, 4, 4}, 50, 2)
	for step := 0; step < 50; step += 10 {
		for x := uint32(0); x < 4; x++ {
			if c := s.Cost(mesh.BlockID{Level: 0, X: x, Y: 2, Z: 2}, step); c <= 0 {
				t.Fatalf("non-positive cost %v", c)
			}
		}
	}
}

func TestSedovDrivesBlockGrowth(t *testing.T) {
	// Integrated with a real mesh: refining along the front must grow the
	// leaf count, and the refined region must move outward.
	m := mesh.NewUniform(8, 8, 8, 2)
	s := NewSedov([3]int{8, 8, 8}, 40, 3)
	initial := m.NumLeaves()
	m.RefineOnce(func(id mesh.BlockID) bool { return s.WantRefine(id, 10) })
	mid := m.NumLeaves()
	if mid <= initial {
		t.Fatalf("no growth: %d -> %d", initial, mid)
	}
	if _, _, ok := m.CheckBalance(); !ok {
		t.Fatal("refinement broke 2:1 balance")
	}
}

func TestCoolingStaticStructure(t *testing.T) {
	g := NewCooling([3]int{8, 8, 8}, 3, 5)
	id := mesh.BlockID{Level: 0, X: 4, Y: 4, Z: 4}
	// Tagging must not depend on step.
	if g.WantRefine(id, 0) != g.WantRefine(id, 1000) {
		t.Fatal("cooling tagging is time-dependent")
	}
	if g.Name() != "cooling" {
		t.Fatal("name wrong")
	}
}

func TestCoolingCostNearClump(t *testing.T) {
	g := NewCooling([3]int{8, 8, 8}, 1, 7)
	g.CostNoise = 0
	clump := g.Clumps[0]
	near := mesh.BlockID{Level: 2, X: uint32(clump[0] * 4), Y: uint32(clump[1] * 4), Z: uint32(clump[2] * 4)}
	far := mesh.BlockID{Level: 0, X: 0, Y: 0, Z: 0}
	if clump[0] < 2 && clump[1] < 2 && clump[2] < 2 {
		far = mesh.BlockID{Level: 0, X: 7, Y: 7, Z: 7}
	}
	if g.Cost(near, 0) <= g.Cost(far, 0) {
		t.Fatalf("clump cost %v not above far cost %v", g.Cost(near, 0), g.Cost(far, 0))
	}
}

func TestCoolingRefinesOnlyNearClumps(t *testing.T) {
	g := NewCooling([3]int{16, 16, 16}, 2, 11)
	m := mesh.NewUniform(16, 16, 16, 1)
	n := m.RefineOnce(func(id mesh.BlockID) bool { return g.WantRefine(id, 0) })
	if n == 0 {
		t.Fatal("no refinement near clumps")
	}
	if n > m.NumLeaves()/2 {
		t.Fatalf("refinement not localized: %d refinements", n)
	}
}

func TestProblemInterfaceCompliance(t *testing.T) {
	var _ Problem = NewSedov([3]int{2, 2, 2}, 10, 1)
	var _ Problem = NewCooling([3]int{2, 2, 2}, 1, 1)
}
