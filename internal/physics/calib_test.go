package physics

import (
	"testing"

	"amrtools/internal/mesh"
)

// Regression test for the Table I block-growth calibration: an 8×8×8 root
// grid (the paper's 512-rank configuration) must grow from 512 leaves into
// the ~2000–3000 range (paper: 2080), staying in the few-blocks-per-rank
// regime throughout.
func TestSedovBlockGrowthMatchesTableI(t *testing.T) {
	m := mesh.NewUniform(8, 8, 8, 2)
	s := NewSedov([3]int{8, 8, 8}, 60, 1)
	peak := m.NumLeaves()
	for step := 5; step < 60; step += 5 {
		m.RefineOnce(func(id mesh.BlockID) bool { return s.WantRefine(id, step) })
		m.CoarsenWhere(func(id mesh.BlockID) bool { return s.WantCoarsen(id, step) })
		if n := m.NumLeaves(); n > peak {
			peak = n
		}
		if _, _, ok := m.CheckBalance(); !ok {
			t.Fatalf("balance broken at step %d", step)
		}
	}
	final := m.NumLeaves()
	if final < 1500 || final > 3200 {
		t.Fatalf("final leaves = %d, want ~2080 (paper Table I)", final)
	}
	if peak > 4000 {
		t.Fatalf("peak leaves = %d, block growth explosion", peak)
	}
}
