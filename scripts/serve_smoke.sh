#!/bin/sh
# serve_smoke.sh — smoke-test the live observability endpoint: start a
# short campaign with -serve, scrape /metrics and /statusz while the
# campaign executes, and fail on any non-200 response or an empty
# exposition. Used by `make serve-smoke` and the CI serve-smoke job.
set -eu

log=$(mktemp)
trap 'kill "$pid" 2>/dev/null || true; rm -f "$log"' EXIT

# fig6 on one worker gives the server a multi-second window to answer in.
go run ./cmd/experiments -quick -only fig6 -j 1 -serve 127.0.0.1:0 \
    >/dev/null 2>"$log" &
pid=$!

# The binary prints "serving ... on http://ADDR" to stderr once the
# listener is bound (before the first campaign starts).
addr=""
for _ in $(seq 1 150); do
    addr=$(sed -n 's|^serving .* on http://||p' "$log" | head -n 1)
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: campaign exited before binding" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.2
done
if [ -z "$addr" ]; then
    echo "serve-smoke: no listen address announced" >&2
    cat "$log" >&2
    exit 1
fi

# curl -f fails on any non-2xx status.
metrics=$(curl -fsS "http://$addr/metrics") || {
    echo "serve-smoke: GET /metrics failed" >&2; exit 1; }
if [ -z "$metrics" ]; then
    echo "serve-smoke: /metrics exposition is empty" >&2
    exit 1
fi
printf '%s\n' "$metrics" | grep -q '^host_campaign_runs_total' || {
    echo "serve-smoke: /metrics missing host_campaign_runs_total:" >&2
    printf '%s\n' "$metrics" | head -n 20 >&2
    exit 1
}
statusz=$(curl -fsS "http://$addr/statusz") || {
    echo "serve-smoke: GET /statusz failed" >&2; exit 1; }
printf '%s\n' "$statusz" | grep -q 'campaign progress' || {
    echo "serve-smoke: /statusz is not the progress page" >&2
    exit 1
}

wait "$pid" || { echo "serve-smoke: campaign failed" >&2; cat "$log" >&2; exit 1; }
echo "serve-smoke: OK — http://$addr served /metrics and /statusz during the campaign"
