module amrtools

go 1.23
